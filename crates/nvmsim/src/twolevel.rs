//! Two-level NVRegions (paper Section 4.3, "Discussions").
//!
//! "To allow more flexibility in region size, one could support in a
//! single system two levels of NVRegions, small and large, using one extra
//! bit (represented with L0) to distinguish them."
//!
//! This module models that design: a [`TwoLevelLayout`] carries two
//! [`ExactLayout`]-style parameter sets sharing the leading-ones prefix,
//! with the bit right below the prefix (`L0`) selecting the level. All
//! address encodings/decodings and the disjointness guarantees are
//! property-tested; the runtime simulator keeps single-level regions (the
//! evaluation only needs those), so this is an arithmetic model like
//! [`crate::layout::ExactLayout`].
//!
//! Note: the example parameters printed in the paper
//! (`{L0=1; L1=2; L2=28; L3=34; L4=57}`) sum to 65 bits, which cannot be —
//! the provided text appears garbled there. We use self-consistent
//! parameters with the same advertised capacities (16 GiB small regions,
//! 1 TiB large regions).

use crate::error::{NvError, Result};
use crate::layout::ExactLayout;

/// Which of the two region levels an address belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Level {
    /// Small regions (L0 bit clear).
    Small,
    /// Large regions (L0 bit set).
    Large,
}

/// A two-level NV-space layout: one `L0` selector bit below the shared
/// `l1` leading-ones prefix, then per-level `{l2, l3, l4}` splits of the
/// remaining `64 - l1 - 1` bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TwoLevelLayout {
    /// Shared leading-ones prefix width.
    pub l1: u32,
    /// Parameters of the small level (interpreted over `64 - l1 - 1` bits).
    pub small: LevelParams,
    /// Parameters of the large level.
    pub large: LevelParams,
}

/// Per-level `{l2, l3, l4}` parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LevelParams {
    /// Segment-index bits.
    pub l2: u32,
    /// Within-segment offset bits.
    pub l3: u32,
    /// Region-ID bits.
    pub l4: u32,
}

impl TwoLevelLayout {
    /// A self-consistent configuration with the paper's advertised
    /// capacities: small regions up to 16 GiB, large regions up to 1 TiB.
    pub const PAPER_CAPACITIES: TwoLevelLayout = TwoLevelLayout {
        l1: 2,
        small: LevelParams {
            l2: 27,
            l3: 34,
            l4: 57,
        },
        large: LevelParams {
            l2: 21,
            l3: 40,
            l4: 57,
        },
    };

    fn level_bits(&self) -> u32 {
        64 - self.l1 - 1
    }

    /// Position of the `L0` selector bit.
    pub fn l0_bit(&self) -> u32 {
        self.level_bits()
    }

    fn as_exact(&self, level: Level) -> ExactLayout {
        // Within a level, addresses look like a (64 - l1 - 1)-bit space;
        // model it as an ExactLayout whose "prefix" is l1 ones + the L0
        // bit value. ExactLayout wants l1+l2+l3 = 64, so extend the prefix.
        let p = self.params(level);
        ExactLayout {
            l1: self.l1 + 1,
            l2: p.l2,
            l3: p.l3,
            l4: p.l4,
        }
    }

    /// The parameters of a level.
    pub fn params(&self, level: Level) -> LevelParams {
        match level {
            Level::Small => self.small,
            Level::Large => self.large,
        }
    }

    /// Validates both levels' constraints (Section 4.3) plus the bit
    /// budget `l2 + l3 = 64 - l1 - 1` per level.
    ///
    /// # Errors
    ///
    /// [`NvError::BadLayout`] naming the violated constraint.
    pub fn validate(&self) -> Result<()> {
        for (name, p) in [("small", self.small), ("large", self.large)] {
            if p.l2 + p.l3 != self.level_bits() {
                return Err(NvError::BadLayout(format!(
                    "{name}: l2 + l3 ({} + {}) must equal 64 - l1 - 1 ({})",
                    p.l2,
                    p.l3,
                    self.level_bits()
                )));
            }
            self.as_exact(if name == "small" {
                Level::Small
            } else {
                Level::Large
            })
            .validate()
            .map_err(|e| NvError::BadLayout(format!("{name}: {e}")))?;
        }
        Ok(())
    }

    /// The leading-ones prefix shared by both levels.
    pub fn prefix(&self) -> u64 {
        if self.l1 == 0 {
            0
        } else {
            !0u64 << (64 - self.l1)
        }
    }

    /// Classifies an address's level by its `L0` bit.
    ///
    /// Returns `None` for addresses outside the NV space.
    pub fn level_of(&self, addr: u64) -> Option<Level> {
        if self.l1 > 0 && addr >> (64 - self.l1) != (!0u64 >> (64 - self.l1)) {
            return None;
        }
        Some(if addr & (1u64 << self.l0_bit()) != 0 {
            Level::Large
        } else {
            Level::Small
        })
    }

    /// Lowest `nvbase` whose flagging bit is set (usable for data).
    pub fn first_usable_nvbase(&self, level: Level) -> u64 {
        1u64 << (self.params(level).l2 - 1)
    }

    /// Composes a data address in the given level:
    /// `[l1 ones][L0][nvbase][offset]`.
    ///
    /// # Panics
    ///
    /// Debug-asserts that `nvbase` has its flag bit set and the fields fit.
    pub fn data_addr(&self, level: Level, nvbase: u64, offset: u64) -> u64 {
        let p = self.params(level);
        debug_assert!(nvbase >> (p.l2 - 1) == 1, "nvbase flag bit must be set");
        debug_assert!(offset < (1u64 << p.l3));
        let bit = match level {
            Level::Small => 0,
            Level::Large => 1u64 << self.l0_bit(),
        };
        self.prefix() | bit | (nvbase << p.l3) | offset
    }

    /// Extracts `(level, nvbase, offset)` from a data address.
    pub fn decompose(&self, addr: u64) -> Option<(Level, u64, u64)> {
        let level = self.level_of(addr)?;
        let p = self.params(level);
        Some((
            level,
            (addr >> p.l3) & ((1u64 << p.l2) - 1),
            addr & ((1u64 << p.l3) - 1),
        ))
    }

    /// `getBase` for the two-level design: mask the level's `l3` bits —
    /// one extra branch (the L0 check) relative to the single-level design,
    /// as the paper's discussion implies.
    pub fn get_base(&self, addr: u64) -> Option<u64> {
        let level = self.level_of(addr)?;
        Some(addr & !((1u64 << self.params(level).l3) - 1))
    }

    /// Maximum region size at a level, in bytes.
    pub fn max_region_size(&self, level: Level) -> u64 {
        1u64 << self.params(level).l3
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_capacities_validate_and_match_advertised_sizes() {
        let t = TwoLevelLayout::PAPER_CAPACITIES;
        t.validate().unwrap();
        assert_eq!(
            t.max_region_size(Level::Small),
            16 << 30,
            "16 GiB small regions"
        );
        assert_eq!(
            t.max_region_size(Level::Large),
            1 << 40,
            "1 TiB large regions"
        );
    }

    #[test]
    fn l0_bit_selects_the_level() {
        let t = TwoLevelLayout::PAPER_CAPACITIES;
        let small = t.data_addr(Level::Small, t.first_usable_nvbase(Level::Small), 42);
        let large = t.data_addr(Level::Large, t.first_usable_nvbase(Level::Large), 42);
        assert_eq!(t.level_of(small), Some(Level::Small));
        assert_eq!(t.level_of(large), Some(Level::Large));
        assert_eq!(t.level_of(0x0000_7fff_0000_0000), None, "non-NV address");
    }

    #[test]
    fn decompose_roundtrips_both_levels() {
        let t = TwoLevelLayout::PAPER_CAPACITIES;
        for level in [Level::Small, Level::Large] {
            let nv = t.first_usable_nvbase(level) | 3;
            let addr = t.data_addr(level, nv, 777);
            let (l2, nvb, off) = t.decompose(addr).unwrap();
            assert_eq!(l2, level);
            assert_eq!(nvb, nv);
            assert_eq!(off, 777);
            assert_eq!(t.get_base(addr).unwrap(), t.data_addr(level, nv, 0));
        }
    }

    #[test]
    fn small_and_large_data_addresses_never_collide() {
        let t = TwoLevelLayout::PAPER_CAPACITIES;
        // Same nvbase/offset numerals in both levels give distinct addresses.
        let nv_s = t.first_usable_nvbase(Level::Small) | 5;
        let nv_l = t.first_usable_nvbase(Level::Large) | 5;
        let a = t.data_addr(Level::Small, nv_s, 99);
        let b = t.data_addr(Level::Large, nv_l, 99);
        assert_ne!(a, b);
        assert_ne!(t.level_of(a), t.level_of(b));
    }

    #[test]
    fn validation_rejects_bit_budget_violations() {
        let mut t = TwoLevelLayout::PAPER_CAPACITIES;
        t.small.l3 += 1; // l2 + l3 now 62 for l1 = 2
        assert!(t.validate().is_err());
    }

    #[test]
    fn per_level_region_id_spaces_are_as_big_as_the_paper_says() {
        // "allows 2^58 total (up to 16 millions loadable at one moment)
        // NVRegions" — our l4 = 57 per level, two levels = 2^58 total ids.
        let t = TwoLevelLayout::PAPER_CAPACITIES;
        assert_eq!(t.small.l4, 57);
        assert_eq!(t.large.l4, 57);
    }
}
