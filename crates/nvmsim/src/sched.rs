//! Deterministic concurrent scheduler for multi-threaded crash schedules.
//!
//! The shadow tracker (PR 2) enumerates crash points of a *single-owner*
//! workload: events are flushes and fences, and `FaultPlan` captures an
//! image at the n-th one. With more than one mutator the event sequence —
//! and therefore what each crash image contains — depends on the OS
//! interleaving, so a failing cell would not replay. This module makes
//! the interleaving itself part of the test input:
//!
//! * worker threads run under a [`Scheduler`] that admits exactly **one
//!   runnable thread at a time** (token passing over a mutex/condvar);
//! * the token changes hands only at **yield points** — entry to
//!   [`crate::latency::wbarrier`] and [`crate::latency::clflush_range`],
//!   i.e. the instrumented persistence points where structure protocols
//!   issue their flushes and fences (lock-free CAS protocols always flush
//!   around their CASes, so these double as the CAS scheduling points);
//! * the next thread is picked by a seeded deterministic hash of the step
//!   number, so **a schedule is a seed**: running the same closures under
//!   the same seed replays the identical interleaving, event numbering,
//!   and (via [`Scheduler::trace`]) per-thread event attribution.
//!
//! Determinism is what makes the multi-threaded `FaultPlan` composition
//! work: `capture_all` under a seeded schedule enumerates every crash
//! point of *that* interleaving in one pass, and `abort_at_nth_event`
//! replays to the same global event. When an abort fires in one worker,
//! the panic is broadcast: sibling threads parked at yield points unwind
//! with [`ScheduleAborted`] so the whole scheduled run stops at the crash
//! point, like a real machine would.
//!
//! Threads not registered with a scheduler (the main thread, or any
//! workload outside a scheduled section) pass through yield points
//! untouched — the single-threaded crash matrices are unaffected.
//!
//! # Yield suppression
//!
//! Allocator internals flush under the region's allocation lock (the
//! lock-free core's `grow()` formats bitmap pages while holding it). A
//! context switch there would deadlock the schedule: the parked thread
//! holds the std mutex the token holder needs. [`crate::region::Region`]
//! therefore wraps
//! its allocation entry points in [`with_yields_suppressed`]; suppressed
//! flushes still *count* as shadow events (they are real crash points)
//! but never change whose turn it is. The interleaving granularity is
//! thus "structure-protocol persistence points", which is what the
//! durable-linearizability harness wants to race anyway.

use std::cell::{Cell, RefCell};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// Panic payload delivered to sibling threads parked at a yield point
/// when another scheduled thread crashes (e.g. with
/// [`crate::CrashPointReached`]): the simulated machine lost power, so
/// every thread stops where it stands. Harnesses catch it with
/// `std::panic::catch_unwind` / `JoinHandle::join` and downcast.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduleAborted;

impl std::fmt::Display for ScheduleAborted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "scheduled run aborted by a sibling thread's crash")
    }
}

/// What kind of persistence event a [`SchedEvent`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A `clflush_range` landing in the region.
    Flush,
    /// A `wbarrier` (ambient: one event per tracked region).
    Fence,
}

/// One attributed persistence event of a scheduled run: which registered
/// thread caused region `base`'s event number `event`. Events from
/// unregistered threads are not recorded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedEvent {
    /// The registered thread id that issued the flush/fence.
    pub thread: usize,
    /// Base address of the region whose event counter advanced.
    pub base: usize,
    /// The region-relative event number (as used by `FaultPlan`).
    pub event: u64,
    /// Flush or fence.
    pub kind: EventKind,
}

#[derive(Debug)]
struct State {
    /// Which thread ids have entered [`Scheduler::run`].
    started: Vec<bool>,
    /// Which thread ids have returned from their closure (or crashed).
    finished: Vec<bool>,
    /// How many threads have registered so far; the schedule begins when
    /// all `nthreads` are present.
    registered: usize,
    /// The currently runnable thread, if any.
    token: Option<usize>,
    /// Monotone count of scheduling decisions (seeds the next pick).
    step: u64,
    /// Set once any scheduled thread panics; everyone else unwinds.
    crashed: bool,
    /// Attributed persistence events, in global order.
    trace: Vec<SchedEvent>,
}

#[derive(Debug)]
struct Inner {
    seed: u64,
    nthreads: usize,
    m: Mutex<State>,
    cv: Condvar,
}

thread_local! {
    /// The scheduler this thread runs under, and its thread id.
    static CTX: RefCell<Option<(Arc<Inner>, usize)>> = const { RefCell::new(None) };
    /// Nesting depth of [`with_yields_suppressed`] sections.
    static SUPPRESS: Cell<u32> = const { Cell::new(0) };
}

fn lock<'a>(inner: &'a Inner) -> MutexGuard<'a, State> {
    inner.m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Picks the next runnable thread among the unfinished ones (possibly the
/// current one again), advancing the decision counter. `None` when every
/// thread has finished.
fn pick_next(inner: &Inner, s: &mut State) -> Option<usize> {
    let live: Vec<usize> = (0..inner.nthreads).filter(|&i| !s.finished[i]).collect();
    if live.is_empty() {
        return None;
    }
    s.step += 1;
    let idx = crate::shadow::splitmix64(inner.seed ^ s.step) as usize % live.len();
    Some(live[idx])
}

/// A seeded deterministic interleaving controller for `nthreads` worker
/// threads. See the module docs for the model; clone it into each worker
/// and call [`Scheduler::run`] with a distinct thread id.
#[derive(Debug, Clone)]
pub struct Scheduler {
    inner: Arc<Inner>,
}

impl Scheduler {
    /// Creates a scheduler for `nthreads` threads driven by `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `nthreads` is zero.
    pub fn new(seed: u64, nthreads: usize) -> Scheduler {
        assert!(nthreads >= 1, "a schedule needs at least one thread");
        Scheduler {
            inner: Arc::new(Inner {
                seed,
                nthreads,
                m: Mutex::new(State {
                    started: vec![false; nthreads],
                    finished: vec![false; nthreads],
                    registered: 0,
                    token: None,
                    step: 0,
                    crashed: false,
                    trace: Vec::new(),
                }),
                cv: Condvar::new(),
            }),
        }
    }

    /// The seed this schedule replays from.
    pub fn seed(&self) -> u64 {
        self.inner.seed
    }

    /// Whether any scheduled thread has crashed (panicked).
    pub fn crashed(&self) -> bool {
        lock(&self.inner).crashed
    }

    /// The attributed persistence events recorded so far, in global
    /// order. Two runs of the same workload under the same seed produce
    /// identical traces — the determinism check harnesses assert on.
    pub fn trace(&self) -> Vec<SchedEvent> {
        lock(&self.inner).trace.clone()
    }

    /// Runs `f` as scheduled thread `tid`. Blocks until all `nthreads`
    /// threads have registered, then executes under the token-passing
    /// discipline: only while holding the token, yielding at instrumented
    /// persistence points.
    ///
    /// # Panics
    ///
    /// Panics if `tid` is out of range or used twice, if the calling
    /// thread is already registered with a scheduler, with
    /// [`ScheduleAborted`] if a sibling crashes first, or by propagating
    /// `f`'s own panic (after broadcasting the crash to siblings).
    pub fn run<T>(&self, tid: usize, f: impl FnOnce() -> T) -> T {
        let inner = &self.inner;
        assert!(
            tid < inner.nthreads,
            "thread id {tid} out of range (nthreads = {})",
            inner.nthreads
        );
        CTX.with(|c| {
            let mut c = c.borrow_mut();
            assert!(
                c.is_none(),
                "this thread already runs under a scheduler (nested run)"
            );
            *c = Some((Arc::clone(inner), tid));
        });
        // Clear the thread-local even if `f` (or a wait) panics, so the
        // OS thread can be reused by an unrelated schedule.
        struct CtxGuard;
        impl Drop for CtxGuard {
            fn drop(&mut self) {
                CTX.with(|c| *c.borrow_mut() = None);
            }
        }
        let _ctx = CtxGuard;
        {
            let mut s = lock(inner);
            assert!(!s.started[tid], "thread id {tid} registered twice");
            s.started[tid] = true;
            s.registered += 1;
            if s.registered == inner.nthreads {
                // Everyone is here: hand out the first token.
                s.token = pick_next(inner, &mut s);
            }
            inner.cv.notify_all();
            while s.token != Some(tid) && !s.crashed {
                s = inner.cv.wait(s).unwrap_or_else(|e| e.into_inner());
            }
            if s.crashed {
                drop(s);
                std::panic::panic_any(ScheduleAborted);
            }
        }
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
        let mut s = lock(inner);
        s.finished[tid] = true;
        match result {
            Ok(v) => {
                if s.token == Some(tid) {
                    s.token = pick_next(inner, &mut s);
                }
                inner.cv.notify_all();
                drop(s);
                v
            }
            Err(payload) => {
                // Power is gone for everyone: wake parked siblings into
                // their own ScheduleAborted unwind.
                s.crashed = true;
                s.token = None;
                inner.cv.notify_all();
                drop(s);
                std::panic::resume_unwind(payload)
            }
        }
    }
}

/// A scheduling point: if the calling thread runs under a [`Scheduler`]
/// (and yields are not suppressed), hand the token to a seeded-random
/// unfinished thread and park until it comes back. A no-op on
/// unregistered threads, so unscheduled workloads are untouched.
///
/// # Panics
///
/// Panics with [`ScheduleAborted`] when a sibling thread crashed while
/// this one was parked (or before it could yield).
#[inline]
pub fn yield_point() {
    // try_with: persistence points can fire from other TLS destructors
    // (e.g. a magazine cache folding its stats on thread exit) after this
    // module's slots are gone; a dead slot means "unregistered thread".
    let Some((inner, tid)) = CTX.try_with(|c| c.borrow().clone()).ok().flatten() else {
        return;
    };
    if SUPPRESS.try_with(|s| s.get()).unwrap_or(0) > 0 {
        return;
    }
    let mut s = lock(&inner);
    if s.crashed {
        drop(s);
        std::panic::panic_any(ScheduleAborted);
    }
    if s.token != Some(tid) {
        // Defensive: only the token holder runs, but never wedge if an
        // unscheduled flush slips through.
        return;
    }
    s.token = pick_next(&inner, &mut s);
    inner.cv.notify_all();
    while s.token != Some(tid) && !s.crashed {
        s = inner.cv.wait(s).unwrap_or_else(|e| e.into_inner());
    }
    if s.crashed {
        drop(s);
        std::panic::panic_any(ScheduleAborted);
    }
}

/// Runs `f` with scheduler yields suppressed on this thread: persistence
/// points inside still count as shadow events but never pass the token.
/// Nests; used by [`crate::Region`] around allocator internals that flush
/// under the allocation lock (see the module docs).
pub fn with_yields_suppressed<T>(f: impl FnOnce() -> T) -> T {
    SUPPRESS.with(|s| s.set(s.get() + 1));
    struct SuppressGuard;
    impl Drop for SuppressGuard {
        fn drop(&mut self) {
            SUPPRESS.with(|s| s.set(s.get() - 1));
        }
    }
    let _guard = SuppressGuard;
    f()
}

/// The scheduled thread id of the calling thread, if it runs under a
/// [`Scheduler`].
pub fn current_thread() -> Option<usize> {
    CTX.with(|c| c.borrow().as_ref().map(|(_, tid)| *tid))
}

/// Attribution hook called by the shadow tracker when region `base`'s
/// event counter advances to `event` on this thread. Recorded only for
/// registered threads.
pub(crate) fn note_event(base: usize, event: u64, kind: EventKind) {
    let Some((inner, tid)) = CTX.with(|c| c.borrow().clone()) else {
        return;
    };
    lock(&inner).trace.push(SchedEvent {
        thread: tid,
        base,
        event,
        kind,
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two threads repeatedly yield; the token hand-off order must be a
    /// pure function of the seed.
    fn interleaving(seed: u64) -> Vec<usize> {
        let sched = Scheduler::new(seed, 2);
        let order = Arc::new(Mutex::new(Vec::new()));
        std::thread::scope(|scope| {
            for tid in 0..2 {
                let sched = sched.clone();
                let order = Arc::clone(&order);
                scope.spawn(move || {
                    sched.run(tid, || {
                        for _ in 0..20 {
                            order.lock().unwrap().push(tid);
                            yield_point();
                        }
                    })
                });
            }
        });
        Arc::try_unwrap(order).unwrap().into_inner().unwrap()
    }

    #[test]
    fn same_seed_same_interleaving() {
        let a = interleaving(42);
        let b = interleaving(42);
        assert_eq!(a, b, "a schedule is a seed");
        assert_eq!(a.len(), 40);
        assert!(a.contains(&0) && a.contains(&1));
    }

    #[test]
    fn different_seeds_differ_somewhere() {
        // Not guaranteed for any single pair, but across a few seeds at
        // least one interleaving must deviate from seed 0's.
        let base = interleaving(0);
        assert!(
            (1..8).any(|s| interleaving(s) != base),
            "every seed produced the identical interleaving"
        );
    }

    #[test]
    fn only_one_thread_runs_at_a_time() {
        let sched = Scheduler::new(7, 3);
        let active = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        std::thread::scope(|scope| {
            for tid in 0..3 {
                let sched = sched.clone();
                let active = Arc::clone(&active);
                scope.spawn(move || {
                    sched.run(tid, || {
                        for _ in 0..50 {
                            let n = active.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                            assert_eq!(n, 0, "two scheduled threads ran concurrently");
                            active.fetch_sub(1, std::sync::atomic::Ordering::SeqCst);
                            yield_point();
                        }
                    })
                });
            }
        });
    }

    #[test]
    fn crash_broadcasts_to_parked_siblings() {
        #[derive(Debug)]
        struct Boom;
        let sched = Scheduler::new(3, 2);
        let results: Vec<Result<(), Box<dyn std::any::Any + Send>>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..2)
                .map(|tid| {
                    let sched = sched.clone();
                    scope.spawn(move || {
                        sched.run(tid, move || {
                            for i in 0..10 {
                                yield_point();
                                if tid == 0 && i == 4 {
                                    std::panic::panic_any(Boom);
                                }
                            }
                        })
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join()).collect()
        });
        assert!(sched.crashed());
        let mut booms = 0;
        let mut aborted = 0;
        for r in results {
            match r {
                Err(p) if p.is::<Boom>() => booms += 1,
                Err(p) if p.is::<ScheduleAborted>() => aborted += 1,
                other => panic!("unexpected join result: {other:?}"),
            }
        }
        assert_eq!((booms, aborted), (1, 1));
    }

    #[test]
    fn suppression_keeps_the_token() {
        let sched = Scheduler::new(9, 2);
        let order = Arc::new(Mutex::new(Vec::new()));
        std::thread::scope(|scope| {
            for tid in 0..2 {
                let sched = sched.clone();
                let order = Arc::clone(&order);
                scope.spawn(move || {
                    sched.run(tid, || {
                        // Suppressed yields must not context-switch: the
                        // three pushes stay contiguous per thread.
                        with_yields_suppressed(|| {
                            for _ in 0..3 {
                                order.lock().unwrap().push(tid);
                                yield_point();
                            }
                        });
                    })
                });
            }
        });
        let order = Arc::try_unwrap(order).unwrap().into_inner().unwrap();
        assert_eq!(order.len(), 6);
        assert_eq!(order[0], order[1]);
        assert_eq!(order[1], order[2]);
        assert_eq!(order[3], order[4]);
        assert_eq!(order[4], order[5]);
    }

    #[test]
    fn unregistered_threads_pass_through() {
        // No scheduler on this thread: yield points and suppression are
        // no-ops, current_thread is None.
        assert_eq!(current_thread(), None);
        yield_point();
        assert_eq!(with_yields_suppressed(|| 5), 5);
    }

    #[test]
    fn single_thread_schedule_runs_to_completion() {
        let sched = Scheduler::new(1, 1);
        let out = sched.run(0, || {
            for _ in 0..5 {
                yield_point();
            }
            17u32
        });
        assert_eq!(out, 17);
        assert!(!sched.crashed());
    }
}
