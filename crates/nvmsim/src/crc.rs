//! Checksums for on-media metadata.
//!
//! The corruption-robustness layer (metadata slots, log-entry validation,
//! `Region::verify`) needs a fast, dependency-free integrity check. This
//! module provides CRC-64/XZ (ECMA-182 polynomial, reflected, init/xorout
//! all-ones) — the same parametrisation as the `crc64fast` family — with a
//! compile-time-built lookup table, plus a CRC-32/ISO-HDLC for callers
//! that only have 4 bytes to spend.
//!
//! Neither CRC is cryptographic: the threat model is media bit-rot and
//! torn writes, not an adversary.

/// Reflected ECMA-182 polynomial used by CRC-64/XZ.
const POLY64: u64 = 0xC96C_5795_D787_0F42;
/// Reflected ISO-HDLC polynomial used by CRC-32.
const POLY32: u32 = 0xEDB8_8320;

const fn build_table64() -> [u64; 256] {
    let mut table = [0u64; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u64;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY64
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

const fn build_table32() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY32
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE64: [u64; 256] = build_table64();
static TABLE32: [u32; 256] = build_table32();

/// CRC-64/XZ of `bytes`.
pub fn crc64(bytes: &[u8]) -> u64 {
    crc64_update(!0, bytes) ^ !0
}

/// Incremental form of [`crc64`]: feed `state = !0`, fold each chunk with
/// this function, finish with `state ^ !0`.
pub fn crc64_update(mut state: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        state = TABLE64[((state ^ b as u64) & 0xFF) as usize] ^ (state >> 8);
    }
    state
}

/// CRC-32/ISO-HDLC (zlib's `crc32`) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut state = !0u32;
    for &b in bytes {
        state = TABLE32[((state ^ b as u32) & 0xFF) as usize] ^ (state >> 8);
    }
    state ^ !0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc64_known_vectors() {
        // CRC-64/XZ check value for "123456789".
        assert_eq!(crc64(b"123456789"), 0x995D_C9BB_DF19_39FA);
        assert_eq!(crc64(b""), 0);
    }

    #[test]
    fn crc32_known_vectors() {
        // CRC-32/ISO-HDLC check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn incremental_matches_one_shot() {
        let data = (0..=255u8).cycle().take(4096).collect::<Vec<_>>();
        let whole = crc64(&data);
        let mut state = !0u64;
        for chunk in data.chunks(37) {
            state = crc64_update(state, chunk);
        }
        assert_eq!(state ^ !0, whole);
    }

    #[test]
    fn single_bit_flip_changes_crc() {
        let mut data = vec![0xA5u8; 1024];
        let before = crc64(&data);
        for &pos in &[0usize, 511, 1023] {
            for bit in 0..8 {
                data[pos] ^= 1 << bit;
                assert_ne!(crc64(&data), before, "flip at {pos}:{bit} undetected");
                data[pos] ^= 1 << bit;
            }
        }
        assert_eq!(crc64(&data), before);
    }
}
