//! Error types for the NVM substrate.

use std::fmt;
use std::io;

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, NvError>;

/// Errors produced by the simulated-NVM substrate.
///
/// Every public fallible operation in this crate returns [`NvError`]. The
/// variants are deliberately coarse: callers usually react to the *category*
/// (out of space, bad image, I/O) rather than to byte-level detail, which is
/// carried in the message payloads instead.
#[derive(Debug)]
pub enum NvError {
    /// The NV space has no free segment that satisfies the request.
    NoFreeSegment,
    /// A region ID outside the configured `[1, 2^L4)` range was requested,
    /// or the ID is already in use by an open region.
    InvalidRid {
        /// The offending region ID.
        rid: u32,
        /// Why it was rejected.
        reason: &'static str,
    },
    /// The requested allocation cannot be satisfied by the region allocator.
    OutOfMemory {
        /// ID of the region that ran out of space.
        region: u32,
        /// Size of the failed request in bytes.
        requested: usize,
    },
    /// An address was expected to fall inside the NV space (or a particular
    /// region) but does not.
    AddressOutOfRange {
        /// The offending address.
        addr: usize,
    },
    /// A persisted region image failed validation (bad magic, version,
    /// truncated file, corrupt allocator metadata, ...).
    BadImage(String),
    /// The named root does not exist in the region.
    RootNotFound(String),
    /// The root directory of the region is full.
    RootDirectoryFull,
    /// A root name exceeds the fixed name capacity.
    RootNameTooLong(String),
    /// Layout parameters violate the constraints of Section 4.3 of the paper.
    BadLayout(String),
    /// An operation required an open region but the region was closed.
    RegionClosed {
        /// ID of the closed region.
        rid: u32,
    },
    /// Shadow persistence tracking was required (fault injection,
    /// replication capture) but `enable_shadow` was never called on the
    /// region.
    ShadowNotEnabled {
        /// Base address of the untracked region.
        base: usize,
    },
    /// An operation named a region by base address but no open region is
    /// mapped there.
    RegionUnknown {
        /// The offending base address.
        base: usize,
    },
    /// Underlying OS-level failure (mmap, msync, file I/O).
    Io(io::Error),
}

impl fmt::Display for NvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NvError::NoFreeSegment => write!(f, "no free NV segment available"),
            NvError::InvalidRid { rid, reason } => {
                write!(f, "invalid region id {rid}: {reason}")
            }
            NvError::OutOfMemory { region, requested } => {
                write!(f, "region {region} cannot allocate {requested} bytes")
            }
            NvError::AddressOutOfRange { addr } => {
                write!(f, "address {addr:#x} is outside the NV space")
            }
            NvError::BadImage(msg) => write!(f, "bad region image: {msg}"),
            NvError::RootNotFound(name) => write!(f, "root not found: {name}"),
            NvError::RootDirectoryFull => write!(f, "root directory is full"),
            NvError::RootNameTooLong(name) => write!(f, "root name too long: {name}"),
            NvError::BadLayout(msg) => write!(f, "bad NV-space layout: {msg}"),
            NvError::RegionClosed { rid } => write!(f, "region {rid} is closed"),
            NvError::ShadowNotEnabled { base } => {
                write!(f, "shadow tracking not enabled for region at {base:#x}")
            }
            NvError::RegionUnknown { base } => {
                write!(f, "no open region mapped at {base:#x}")
            }
            NvError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for NvError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NvError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for NvError {
    fn from(e: io::Error) -> Self {
        NvError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase_ish() {
        let cases: Vec<NvError> = vec![
            NvError::NoFreeSegment,
            NvError::InvalidRid {
                rid: 3,
                reason: "already open",
            },
            NvError::OutOfMemory {
                region: 1,
                requested: 64,
            },
            NvError::AddressOutOfRange { addr: 0xdead },
            NvError::BadImage("truncated".into()),
            NvError::RootNotFound("head".into()),
            NvError::RootDirectoryFull,
            NvError::RootNameTooLong("x".repeat(99)),
            NvError::BadLayout("l4 < l2".into()),
            NvError::RegionClosed { rid: 7 },
            NvError::ShadowNotEnabled { base: 0x7000_0000 },
            NvError::RegionUnknown { base: 0x7000_0000 },
            NvError::Io(io::Error::other("boom")),
        ];
        for c in cases {
            let s = c.to_string();
            assert!(!s.is_empty());
            assert!(!s.ends_with('.'), "no trailing punctuation: {s}");
        }
    }

    #[test]
    fn io_error_converts_and_sources() {
        use std::error::Error as _;
        let e: NvError = io::Error::new(io::ErrorKind::NotFound, "gone").into();
        assert!(matches!(e, NvError::Io(_)));
        assert!(e.source().is_some());
        assert!(NvError::NoFreeSegment.source().is_none());
    }

    #[test]
    fn debug_is_never_empty() {
        assert!(!format!("{:?}", NvError::RootDirectoryFull).is_empty());
    }
}
