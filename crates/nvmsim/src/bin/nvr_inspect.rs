//! `nvr-inspect` — print what a region image file contains.
//!
//! ```text
//! nvr_inspect <image.nvr> [...]
//! ```

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("usage: nvr_inspect <image.nvr> [...]");
        return ExitCode::from(2);
    }
    let mut status = ExitCode::SUCCESS;
    for path in &args {
        println!("=== {path}");
        match nvmsim::inspect::inspect(path) {
            Ok(report) => print!("{report}"),
            Err(e) => {
                eprintln!("error: {e}");
                status = ExitCode::FAILURE;
            }
        }
    }
    status
}
