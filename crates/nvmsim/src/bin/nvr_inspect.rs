//! `nvr-inspect` — examine and scrub region image files.
//!
//! ```text
//! nvr_inspect <image.nvr> [...]            # header/roots/allocator summary
//! nvr_inspect verify <image.nvr> [...]     # full corruption walk (checksums,
//!                                          # slots, log entries); exit 1 on damage
//! nvr_inspect scrub <image.nvr> [...]      # verify + freshen the inactive
//!                                          # metadata slot of healthy images
//! ```
//!
//! `verify` is scriptable: exit code 0 means every check passed, 1 means
//! damage was found (the report says what), 2 means usage/IO trouble.

use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!("usage: nvr_inspect [verify|scrub] <image.nvr> [...]");
    ExitCode::from(2)
}

/// Runs the corruption walk over each image, printing the report. Returns
/// failure if any image is damaged or unreadable.
fn verify(paths: &[String]) -> ExitCode {
    let mut status = ExitCode::SUCCESS;
    for path in paths {
        println!("=== {path}");
        match nvmsim::verify::verify_file(path) {
            Ok(report) => {
                println!("{report}");
                if !report.healthy() {
                    status = ExitCode::FAILURE;
                }
            }
            Err(e) => {
                eprintln!("error: {e}");
                status = ExitCode::from(2);
            }
        }
    }
    status
}

/// Scrub pass: verify each image; when healthy, open it and rewrite the
/// inactive metadata slot so both checksummed snapshots are fresh (a
/// defense against slot-side rot accumulating while an image sits cold).
/// Damaged images are reported and left untouched — salvage is a
/// deliberate, separate step via `Region::open_file_salvage`.
fn scrub(paths: &[String]) -> ExitCode {
    let mut status = ExitCode::SUCCESS;
    for path in paths {
        println!("=== {path}");
        let report = match nvmsim::verify::verify_file(path) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("error: {e}");
                status = ExitCode::from(2);
                continue;
            }
        };
        if !report.healthy() {
            println!("{report}");
            println!("scrub:      damaged image left untouched (use salvage)");
            status = ExitCode::FAILURE;
            continue;
        }
        match nvmsim::Region::open_file(path).and_then(|r| r.update_meta_slots().and(r.close())) {
            Ok(()) => println!("scrub:      ok (metadata slot refreshed)"),
            Err(e) => {
                eprintln!("error: {e}");
                status = ExitCode::FAILURE;
            }
        }
    }
    status
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.split_first() {
        None => usage(),
        Some((cmd, rest)) if cmd == "verify" => {
            if rest.is_empty() {
                usage()
            } else {
                verify(rest)
            }
        }
        Some((cmd, rest)) if cmd == "scrub" => {
            if rest.is_empty() {
                usage()
            } else {
                scrub(rest)
            }
        }
        _ => {
            let mut status = ExitCode::SUCCESS;
            for path in &args {
                println!("=== {path}");
                match nvmsim::inspect::inspect(path) {
                    Ok(report) => print!("{report}"),
                    Err(e) => {
                        eprintln!("error: {e}");
                        status = ExitCode::FAILURE;
                    }
                }
            }
            status
        }
    }
}
