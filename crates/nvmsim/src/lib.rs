//! # nvmsim — a simulated byte-addressable NVM substrate
//!
//! This crate provides the non-volatile-memory substrate that the
//! position-independent pointer representations of the `pi-core` crate run
//! on. It simulates the system assumed by *"Efficient Support of Position
//! Independence on Non-Volatile Memory"* (MICRO-50, 2017), Section 2:
//!
//! * NVM is **directly accessed** as main memory (no block I/O);
//! * it is organized into multiple **NVRegions**, each a contiguous chunk
//!   with a unique integer ID, named **NVRoots**, and its own allocator;
//! * an **NV space** — one reserved range of virtual addresses — holds all
//!   mapped regions plus the two direct-mapped lookup tables (**RID table**
//!   and **base table**) that make the paper's RIV pointer conversions a
//!   handful of bit transformations and one load.
//!
//! Durability is simulated with file-backed mappings: a region image is a
//! position-independent byte-for-byte snapshot that can be remapped at any
//! segment base in a later run. See `DESIGN.md` at the repository root for
//! the substitutions relative to the paper's hardware platform.
//!
//! ## Quick start
//!
//! ```
//! # fn main() -> Result<(), nvmsim::NvError> {
//! use nvmsim::{NvSpace, Region};
//!
//! // Create a 1 MiB region, allocate in it, name a root.
//! let region = Region::create(1 << 20)?;
//! let node = region.alloc(64, 8)?;
//! region.set_root("head", node.as_ptr() as usize)?;
//!
//! // The paper's conversion functions: address -> region id -> base.
//! let space = NvSpace::global();
//! let rid = space.rid_of_addr(node.as_ptr() as usize);
//! assert_eq!(rid, region.rid());
//! assert_eq!(space.base_of_rid(rid), region.base());
//! region.close()?;
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod alloc;
pub mod crc;
pub mod dlin;
pub mod error;
pub mod inspect;
pub mod latency;
pub mod layout;
pub mod llalloc;
pub mod magazine;
pub mod mem;
pub mod metrics;
pub mod nvspace;
pub mod persist;
pub mod region;
pub mod registry;
pub mod repl;
pub mod sched;
pub mod shadow;
pub mod twolevel;
pub mod verify;

pub use dlin::{CheckReport, History, OpRecord, Recorder, SetOp, Violation};
pub use error::{NvError, Result};
pub use latency::LatencyModel;
pub use layout::{ExactLayout, Layout};
pub use nvspace::NvSpace;
pub use persist::RegionPool;
pub use region::Region;
pub use registry::RegionInfo;
pub use repl::{
    ApplyReport, Backpressure, Delta, DeltaLine, ReplError, ReplSink, ReplSource, Replicator,
    ReplicatorConfig,
};
pub use sched::{SchedEvent, ScheduleAborted, Scheduler};
pub use shadow::{
    CapturedCrash, CrashPointReached, FaultPlan, FaultPolicy, FaultReport, FaultStamp, ShadowError,
};
pub use twolevel::{Level, TwoLevelLayout};
pub use verify::{LogCheck, RootIssue, SlotState, SlotStatus, VerifyReport};
