//! Software NVM latency emulation (substitution S2 in DESIGN.md).
//!
//! The paper's evaluation ran on Intel PMEP, which injects configurable
//! latency on loads/stores to the emulated NVM range and models a 115 ns
//! write barrier. Per-load injection is impossible in software without
//! instrumenting exactly the instructions under study, so this module only
//! emulates the *explicit* persistence points — `clflush`-style cache-line
//! flushes and write barriers — which is where PMEP latencies bit in the
//! paper's transactional experiments.
//!
//! Delays are busy-wait spins calibrated once per process against the
//! monotonic clock, so a requested 115 ns barrier really costs ~115 ns of
//! CPU time regardless of machine speed.

use crate::metrics::{self, Counter};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Latency parameters of the emulated NVM device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyModel {
    /// Cost of a write barrier (`wbarrier`), in nanoseconds. The paper's
    /// experiments configured PMEP to 115 ns.
    pub wbarrier_ns: u64,
    /// Cost of flushing one cache line to the device, in nanoseconds
    /// (PMEP's "optimized clflush").
    pub clflush_ns: u64,
}

impl LatencyModel {
    /// The configuration used in the paper's experiments.
    pub const PAPER: LatencyModel = LatencyModel {
        wbarrier_ns: 115,
        clflush_ns: 40,
    };

    /// No injected latency (default): measure pure software overheads.
    pub const OFF: LatencyModel = LatencyModel {
        wbarrier_ns: 0,
        clflush_ns: 0,
    };
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel::OFF
    }
}

static WBARRIER_NS: AtomicU64 = AtomicU64::new(0);
static CLFLUSH_NS: AtomicU64 = AtomicU64::new(0);

/// Installs a latency model process-wide. Returns the previous model.
///
/// Installing a nonzero model eagerly runs [`calibrate`], so the first
/// timed `wbarrier`/`clflush_range` afterwards does not absorb the ~2 ms
/// one-time spin calibration.
pub fn set_model(m: LatencyModel) -> LatencyModel {
    let prev = model();
    WBARRIER_NS.store(m.wbarrier_ns, Ordering::Relaxed);
    CLFLUSH_NS.store(m.clflush_ns, Ordering::Relaxed);
    if m.wbarrier_ns != 0 || m.clflush_ns != 0 {
        calibrate();
    }
    prev
}

/// Forces the once-per-process spin calibration to run now instead of
/// lazily inside the first nonzero [`delay_ns`]. Idempotent and cheap
/// after the first call; benchmarks call this from their warmup.
pub fn calibrate() {
    spins_per_us();
}

/// The currently installed latency model.
pub fn model() -> LatencyModel {
    LatencyModel {
        wbarrier_ns: WBARRIER_NS.load(Ordering::Relaxed),
        clflush_ns: CLFLUSH_NS.load(Ordering::Relaxed),
    }
}

/// Spins-per-microsecond calibration, computed once per process.
fn spins_per_us() -> usize {
    static CAL: OnceLock<usize> = OnceLock::new();
    *CAL.get_or_init(|| {
        // Run a known number of spin iterations and time them.
        let iters = 2_000_000usize;
        let start = Instant::now();
        spin(iters);
        let elapsed = start.elapsed().as_nanos().max(1) as usize;
        // iterations per 1000 ns
        (iters.saturating_mul(1000) / elapsed).max(1)
    })
}

#[inline]
fn spin(iters: usize) {
    static SINK: AtomicUsize = AtomicUsize::new(0);
    let mut acc = 0usize;
    for i in 0..iters {
        acc = acc.wrapping_add(i ^ (acc << 1));
        std::hint::spin_loop();
    }
    // Defeat dead-code elimination without contending a cache line per
    // iteration.
    SINK.store(acc, Ordering::Relaxed);
}

/// Busy-waits approximately `ns` nanoseconds. A no-op for `ns == 0`.
#[inline]
pub fn delay_ns(ns: u64) {
    if ns == 0 {
        return;
    }
    let spins = (ns as usize).saturating_mul(spins_per_us()) / 1000;
    spin(spins.max(1));
}

/// Emulates a write barrier: orders prior NVM stores and pays the
/// configured `wbarrier` latency.
#[inline]
pub fn wbarrier() {
    // Scheduling point: under a seeded `crate::sched` schedule, the
    // interleaving can change hands here, *before* the event is counted.
    crate::sched::yield_point();
    std::sync::atomic::fence(Ordering::SeqCst);
    crate::shadow::on_fence();
    metrics::incr(Counter::WbarrierCalls);
    let ns = WBARRIER_NS.load(Ordering::Relaxed);
    if ns != 0 {
        metrics::add(Counter::WbarrierDelayNs, ns);
        delay_ns(ns);
    }
}

/// Emulates flushing the cache lines covering `[addr, addr+len)` to the
/// device: pays the configured per-line flush latency.
#[inline]
pub fn clflush_range(addr: usize, len: usize) {
    // Scheduling point, like `wbarrier`.
    crate::sched::yield_point();
    crate::shadow::on_flush(addr, len);
    if len == 0 {
        return;
    }
    let first = addr & !63;
    let last = (addr + len - 1) & !63;
    let lines = ((last - first) / 64 + 1) as u64;
    metrics::incr(Counter::ClflushCalls);
    metrics::add(Counter::ClflushLines, lines);
    let per_line = CLFLUSH_NS.load(Ordering::Relaxed);
    if per_line == 0 {
        return;
    }
    metrics::add(Counter::ClflushDelayNs, per_line * lines);
    delay_ns(per_line * lines);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_model_is_off() {
        assert_eq!(LatencyModel::default(), LatencyModel::OFF);
    }

    #[test]
    fn set_model_roundtrips() {
        let prev = set_model(LatencyModel::PAPER);
        assert_eq!(model(), LatencyModel::PAPER);
        set_model(prev);
    }

    #[test]
    fn delay_roughly_matches_request() {
        // Calibration is coarse; just check the delay is in the right order
        // of magnitude and monotone in the request.
        let t0 = Instant::now();
        delay_ns(200_000);
        let d1 = t0.elapsed();
        assert!(d1.as_nanos() >= 50_000, "200us request took {d1:?}");

        let t0 = Instant::now();
        delay_ns(2_000_000);
        let d2 = t0.elapsed();
        assert!(d2 > d1, "longer request must spin longer");
    }

    #[test]
    fn clflush_counts_cache_lines() {
        let prev = set_model(LatencyModel {
            wbarrier_ns: 0,
            clflush_ns: 10_000,
        });
        // 3 lines: [60, 190) touches lines 0, 1, 2.
        let t0 = Instant::now();
        clflush_range(60, 130);
        let d = t0.elapsed();
        set_model(prev);
        assert!(
            d.as_nanos() >= 10_000,
            "three-line flush should cost >= one line"
        );
    }

    #[test]
    fn first_delay_after_calibrate_matches_later_ones() {
        // The lazy calibration used to run (2M spin iterations, ~ms) inside
        // the first timed delay. After an explicit calibrate(), the first
        // delay must be in family with subsequent ones.
        calibrate();
        let measure = || {
            let t0 = Instant::now();
            delay_ns(200_000);
            t0.elapsed().as_nanos()
        };
        let first = measure();
        let mut later: Vec<u128> = (0..5).map(|_| measure()).collect();
        later.sort_unstable();
        let median = later[later.len() / 2];
        // Generous bound: scheduler noise aside, an uncalibrated first call
        // would exceed this by an order of magnitude (2M iterations vs the
        // ~40K needed for 200us).
        assert!(
            first < median.saturating_mul(8) + 1_000_000,
            "first delay {first}ns vs median {median}ns: calibration leaked \
             into the first timed delay"
        );
    }

    #[test]
    fn zero_latency_paths_are_cheap() {
        let prev = set_model(LatencyModel::OFF);
        let t0 = Instant::now();
        for _ in 0..10_000 {
            wbarrier();
            clflush_range(0x1000, 256);
        }
        let d = t0.elapsed();
        set_model(prev);
        assert!(d.as_millis() < 500, "off model must not spin");
    }
}
