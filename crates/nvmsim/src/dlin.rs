//! Durable-linearizability checking for concurrent set histories.
//!
//! The concurrent crash matrix races a shared-mutable set under a seeded
//! schedule ([`crate::sched`]), injects a crash at some global
//! persistence event, recovers the image, and must then decide: *is the
//! recovered state one a correct durable-linearizable set could be in?*
//! This module answers that question from a recorded history.
//!
//! # Model
//!
//! Each worker records one [`OpRecord`] per completed or in-flight
//! operation: the op, its key, the observed result (`None` while
//! in-flight at the crash), a **linearization stamp** (taken at the op's
//! linearization point — under the serialized scheduler, stamp order *is*
//! the order the volatile state evolved in), and two event readings of
//! the region's shadow clock: `invoke_event` (at invocation) and
//! `durable_event` (right after the fence that made the response
//! durable). A crash image at event `n` reflects events `1..n` minus `n`
//! itself, so an op is **durably linearized before the crash** exactly
//! when `durable_event < n`.
//!
//! Following Izraelevitz et al.'s *durable linearizability* (the strict
//! form — every completed op is durable before its response is returned,
//! which the link-and-persist structure guarantees by flushing at the
//! destination even for reads), the checker classifies each op against a
//! crash at event `n`:
//!
//! * **excluded** (`invoke_event >= n`): invoked after the image was
//!   captured; nothing it did can be in the image;
//! * **required** (response recorded and `durable_event < n`): the op
//!   durably happened — its recorded result must be consistent with the
//!   replay, and its effect must survive recovery;
//! * **optional** (everything else): in-flight or not-yet-durable ops
//!   whose effect may or may not have reached the media (a torn image
//!   can keep an unfenced CAS). Mutating optional ops form a
//!   subset-search choice; non-mutating ones (reads, and completed
//!   no-effect ops like a failed insert) are skipped.
//!
//! Set ops on distinct keys commute, so the search is per key: find a
//! choice of optional effects such that replaying the key's ops in stamp
//! order satisfies every required op's recorded result and lands on the
//! recovered membership. Failures are typed ([`Violation`]): a durable
//! op whose effect vanished ([`Violation::LostDurableOp`]), a recovered
//! key no history explains ([`Violation::PhantomKey`]), a required
//! response impossible in every linearization
//! ([`Violation::Inconsistent`]), or an otherwise unexplainable final
//! membership ([`Violation::Unexplained`]).
//!
//! Histories serialize to a small CRC-sealed file format (`NVPIHIS1`,
//! [`encode_history`]/[`decode_history`]) so failed matrix cells can be
//! triaged post-mortem with `nvr_inspect history`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// A set operation named by a history record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SetOp {
    /// `insert(key)` — returns `true` if the key was absent.
    Insert,
    /// `remove(key)` — returns `true` if the key was present.
    Remove,
    /// `contains(key)` — returns the membership.
    Contains,
}

impl SetOp {
    fn code(self) -> u8 {
        match self {
            SetOp::Insert => 0,
            SetOp::Remove => 1,
            SetOp::Contains => 2,
        }
    }

    fn from_code(c: u8) -> Option<SetOp> {
        match c {
            0 => Some(SetOp::Insert),
            1 => Some(SetOp::Remove),
            2 => Some(SetOp::Contains),
            _ => None,
        }
    }

    /// Short lowercase name (`insert`/`remove`/`contains`).
    pub fn name(self) -> &'static str {
        match self {
            SetOp::Insert => "insert",
            SetOp::Remove => "remove",
            SetOp::Contains => "contains",
        }
    }
}

/// One operation of a recorded concurrent history. See the module docs
/// for the field semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpRecord {
    /// The scheduled thread id that ran the op.
    pub thread: u32,
    /// Which set operation.
    pub op: SetOp,
    /// The key operated on.
    pub key: u64,
    /// The observed response, `None` if the op was still in flight when
    /// the run stopped.
    pub result: Option<bool>,
    /// Linearization stamp: total order of linearization points across
    /// threads (unique per history).
    pub stamp: u64,
    /// The region's shadow event count read at invocation.
    pub invoke_event: u64,
    /// The region's shadow event count read after the fence that made
    /// the response durable (`u64::MAX` while in flight).
    pub durable_event: u64,
}

/// A recorded concurrent run: the keys present (and durable) before the
/// workload started, plus every operation attempted.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct History {
    /// Keys durably in the set before the first recorded op.
    pub initial: Vec<u64>,
    /// All recorded operations (any order; the checker sorts by stamp).
    pub ops: Vec<OpRecord>,
}

/// Process-global linearization stamp source. Only relative order within
/// one history matters; harnesses comparing traces across runs should
/// normalize (or call [`reset_stamps`] while otherwise serialized).
static STAMPS: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// The last stamp issued to *this* thread (0 = none since the last
    /// [`take_thread_stamp`]). Lets a harness recover the exact
    /// linearization stamp of an op that crashed mid-flight: stamped
    /// structures draw exactly one stamp per op, at the linearization
    /// point, so after catching a crash panic the harness reads back
    /// whether — and where — the in-flight op linearized.
    static LAST_STAMP: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// Draws the next linearization stamp (unique, monotone process-wide).
pub fn next_stamp() -> u64 {
    let s = STAMPS.fetch_add(1, Ordering::Relaxed);
    LAST_STAMP.set(s);
    s
}

/// Takes (and clears) the last stamp issued to the calling thread;
/// 0 when no stamp was issued since the previous take. Call before an
/// op to clear, and again after catching the op's crash panic: a zero
/// means the op never reached its linearization point (no volatile
/// effect — safe to drop its record), nonzero is its exact stamp.
pub fn take_thread_stamp() -> u64 {
    LAST_STAMP.replace(0)
}

/// Resets the stamp source. Only safe to use while no stamped structure
/// operations run concurrently (e.g. a serialized test harness).
pub fn reset_stamps() {
    STAMPS.store(1, Ordering::Relaxed);
}

/// Thread-safe collector for [`OpRecord`]s produced by scheduled worker
/// threads.
#[derive(Debug, Default)]
pub struct Recorder {
    ops: Mutex<Vec<OpRecord>>,
}

impl Recorder {
    /// An empty recorder.
    pub fn new() -> Recorder {
        Recorder::default()
    }

    /// Appends one op record.
    pub fn record(&self, op: OpRecord) {
        self.ops.lock().unwrap_or_else(|e| e.into_inner()).push(op);
    }

    /// Builds the history from everything recorded so far.
    pub fn history(&self, initial: Vec<u64>) -> History {
        History {
            initial,
            ops: self.ops.lock().unwrap_or_else(|e| e.into_inner()).clone(),
        }
    }
}

/// A durable-linearizability violation found by [`check`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Violation {
    /// An op that was durably linearized before the crash has no
    /// surviving effect in the recovered state (a lost durable insert,
    /// or a removed key that resurrected).
    LostDurableOp {
        /// The affected key.
        key: u64,
        /// Stamp of the durable op whose effect is missing (0 when it
        /// cannot be pinned to a single op).
        stamp: u64,
    },
    /// The recovered state contains a key that no recorded operation
    /// (and no initial membership) could have put there.
    PhantomKey {
        /// The unexplained key.
        key: u64,
    },
    /// No linearization is consistent with the results the durable ops
    /// actually returned (the structure lied to a caller).
    Inconsistent {
        /// The affected key.
        key: u64,
        /// Stamp of the first required op on that key.
        stamp: u64,
    },
    /// The required ops are internally consistent, but no choice of
    /// in-flight effects reaches the recovered membership.
    Unexplained {
        /// The affected key.
        key: u64,
    },
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::LostDurableOp { key, stamp } => {
                write!(f, "durable op (stamp {stamp}) on key {key} lost its effect")
            }
            Violation::PhantomKey { key } => {
                write!(f, "recovered key {key} appears in no recorded operation")
            }
            Violation::Inconsistent { key, stamp } => write!(
                f,
                "no linearization matches the durable results on key {key} (first required stamp {stamp})"
            ),
            Violation::Unexplained { key } => {
                write!(f, "no choice of in-flight effects explains key {key}")
            }
        }
    }
}

/// Outcome of a [`check`] run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CheckReport {
    /// Every violation found (empty = the recovered state is explained).
    pub violations: Vec<Violation>,
    /// Distinct keys examined (history ∪ initial ∪ recovered).
    pub keys: usize,
    /// Whether any key's optional-op subset search hit the [`SUBSET_CAP`]
    /// and was truncated (a pass with `capped = true` is inconclusive).
    pub capped: bool,
}

impl CheckReport {
    /// Whether the recovered state passed (no violations, search not
    /// truncated).
    pub fn ok(&self) -> bool {
        self.violations.is_empty() && !self.capped
    }
}

/// Cap on the per-key subset search: at most `2^16` choices of optional
/// effects are tried (16 optional mutating ops per key). Matrix
/// workloads stay far below this; hitting it marks the report
/// [`CheckReport::capped`].
pub const SUBSET_CAP: usize = 16;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Class {
    Required,
    OptionalMut,
    Skip,
}

fn classify(op: &OpRecord, crash_event: u64) -> Class {
    let durable = op.result.is_some() && op.durable_event < crash_event;
    if durable {
        return Class::Required;
    }
    match op.op {
        // An in-flight or not-yet-durable mutation may or may not have
        // reached the media; a completed no-effect one cannot matter.
        SetOp::Insert | SetOp::Remove => match op.result {
            None | Some(true) => Class::OptionalMut,
            Some(false) => Class::Skip,
        },
        SetOp::Contains => Class::Skip,
    }
}

/// Per-key replay: can some choice of optional effects satisfy every
/// required result and land on `target` membership? Returns
/// `(explained, preconditions_satisfiable, capped)`.
fn explain_key(initial: bool, ops: &[(&OpRecord, Class)], target: bool) -> (bool, bool, bool) {
    let optionals = ops.iter().filter(|(_, c)| *c == Class::OptionalMut).count();
    let capped = optionals > SUBSET_CAP;
    let bits = optionals.min(SUBSET_CAP);
    let mut precond_ok = false;
    for mask in 0u64..(1u64 << bits) {
        let mut m = initial;
        let mut opt_idx = 0;
        let mut ok = true;
        for (op, class) in ops {
            match class {
                Class::Required => {
                    let expected = match op.op {
                        SetOp::Insert => !m,
                        SetOp::Remove | SetOp::Contains => m,
                    };
                    if op.result != Some(expected) {
                        ok = false;
                        break;
                    }
                    match op.op {
                        SetOp::Insert => m = true,
                        SetOp::Remove => m = false,
                        SetOp::Contains => {}
                    }
                }
                Class::OptionalMut => {
                    let chosen = opt_idx < bits && (mask >> opt_idx) & 1 == 1;
                    opt_idx += 1;
                    if chosen {
                        match op.op {
                            SetOp::Insert => m = true,
                            SetOp::Remove => m = false,
                            SetOp::Contains => {}
                        }
                    }
                }
                Class::Skip => {}
            }
        }
        if ok {
            precond_ok = true;
            if m == target {
                return (true, true, capped);
            }
        }
    }
    (false, precond_ok, capped)
}

/// Checks a recovered membership against a recorded history, for a crash
/// at shadow event `crash_event` of the structure's region. See the
/// module docs for the op classification and search.
pub fn check(h: &History, crash_event: u64, recovered: &[u64]) -> CheckReport {
    let mut keys: Vec<u64> = h
        .ops
        .iter()
        .map(|o| o.key)
        .chain(h.initial.iter().copied())
        .chain(recovered.iter().copied())
        .collect();
    keys.sort_unstable();
    keys.dedup();

    let mut report = CheckReport {
        keys: keys.len(),
        ..CheckReport::default()
    };
    for &key in &keys {
        let mut ops: Vec<&OpRecord> = h
            .ops
            .iter()
            .filter(|o| o.key == key && o.invoke_event < crash_event)
            .collect();
        ops.sort_by_key(|o| o.stamp);
        let classed: Vec<(&OpRecord, Class)> =
            ops.iter().map(|o| (*o, classify(o, crash_event))).collect();
        let initial = h.initial.contains(&key);
        let target = recovered.contains(&key);
        let (explained, precond_ok, capped) = explain_key(initial, &classed, target);
        report.capped |= capped;
        if explained {
            continue;
        }
        let can_insert = classed
            .iter()
            .any(|(o, c)| o.op == SetOp::Insert && *c != Class::Skip);
        if target && !initial && !can_insert {
            report.violations.push(Violation::PhantomKey { key });
            continue;
        }
        if !precond_ok {
            let stamp = classed
                .iter()
                .find(|(_, c)| *c == Class::Required)
                .map_or(0, |(o, _)| o.stamp);
            report
                .violations
                .push(Violation::Inconsistent { key, stamp });
            continue;
        }
        // Preconditions are satisfiable but the recovered membership is
        // not reachable: a durable op's effect went missing. Pin it to
        // the last required mutating op pushing toward the lost state.
        let lost = classed
            .iter()
            .rev()
            .find(|(o, c)| {
                *c == Class::Required
                    && match o.op {
                        SetOp::Insert => !target,
                        SetOp::Remove => target,
                        SetOp::Contains => false,
                    }
            })
            .map(|(o, _)| o.stamp);
        match lost {
            Some(stamp) => report
                .violations
                .push(Violation::LostDurableOp { key, stamp }),
            None => report.violations.push(Violation::Unexplained { key }),
        }
    }
    report
}

// -- history file codec -------------------------------------------------------

/// Magic leading a serialized history file (`"NVPIHIS1"`).
pub const HISTORY_MAGIC: [u8; 8] = *b"NVPIHIS1";
/// Current history file format version.
pub const HISTORY_VERSION: u32 = 1;
/// Fixed header length of a serialized history.
pub const HISTORY_HEADER_LEN: usize = 40;
/// Encoded length of one [`OpRecord`].
pub const HISTORY_RECORD_LEN: usize = 40;

/// Why a serialized history failed to decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HistoryCodecError {
    /// Shorter than the fixed header.
    TooShort,
    /// The leading magic is not [`HISTORY_MAGIC`].
    BadMagic,
    /// Unknown format version.
    BadVersion {
        /// The version found.
        version: u32,
    },
    /// The declared record counts overrun the buffer (torn tail).
    Truncated,
    /// The trailing CRC-64 does not match the content.
    BadCrc,
    /// An op code outside the inventory.
    BadOp {
        /// The offending code.
        code: u8,
    },
    /// A result code outside `0..=2`.
    BadResult {
        /// The offending code.
        code: u8,
    },
}

impl std::fmt::Display for HistoryCodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HistoryCodecError::TooShort => write!(f, "shorter than the history header"),
            HistoryCodecError::BadMagic => write!(f, "bad magic (not a NVPIHIS1 history)"),
            HistoryCodecError::BadVersion { version } => {
                write!(f, "unsupported history version {version}")
            }
            HistoryCodecError::Truncated => write!(f, "torn tail: declared records overrun file"),
            HistoryCodecError::BadCrc => write!(f, "trailing CRC-64 mismatch"),
            HistoryCodecError::BadOp { code } => write!(f, "unknown op code {code}"),
            HistoryCodecError::BadResult { code } => write!(f, "unknown result code {code}"),
        }
    }
}

impl std::error::Error for HistoryCodecError {}

/// Serializes a history (plus the crash event it was checked against)
/// into the CRC-sealed `NVPIHIS1` format.
pub fn encode_history(h: &History, crash_event: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(
        HISTORY_HEADER_LEN + h.initial.len() * 8 + h.ops.len() * HISTORY_RECORD_LEN + 8,
    );
    out.extend_from_slice(&HISTORY_MAGIC);
    out.extend_from_slice(&HISTORY_VERSION.to_le_bytes());
    out.extend_from_slice(&0u32.to_le_bytes()); // reserved
    out.extend_from_slice(&crash_event.to_le_bytes());
    out.extend_from_slice(&(h.initial.len() as u64).to_le_bytes());
    out.extend_from_slice(&(h.ops.len() as u64).to_le_bytes());
    for k in &h.initial {
        out.extend_from_slice(&k.to_le_bytes());
    }
    for op in &h.ops {
        out.extend_from_slice(&op.thread.to_le_bytes());
        out.push(op.op.code());
        out.push(match op.result {
            None => 0,
            Some(false) => 1,
            Some(true) => 2,
        });
        out.extend_from_slice(&0u16.to_le_bytes()); // pad
        out.extend_from_slice(&op.key.to_le_bytes());
        out.extend_from_slice(&op.stamp.to_le_bytes());
        out.extend_from_slice(&op.invoke_event.to_le_bytes());
        out.extend_from_slice(&op.durable_event.to_le_bytes());
    }
    let crc = crate::crc::crc64(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Decodes an `NVPIHIS1` history file back into the history and the
/// crash event it records.
///
/// # Errors
///
/// [`HistoryCodecError`] naming the first structural problem found; a
/// torn or bit-flipped file never decodes partially.
pub fn decode_history(bytes: &[u8]) -> Result<(History, u64), HistoryCodecError> {
    if bytes.len() < HISTORY_HEADER_LEN + 8 {
        return Err(HistoryCodecError::TooShort);
    }
    if bytes[..8] != HISTORY_MAGIC {
        return Err(HistoryCodecError::BadMagic);
    }
    let u32_at = |i: usize| u32::from_le_bytes(bytes[i..i + 4].try_into().unwrap());
    let u64_at = |i: usize| u64::from_le_bytes(bytes[i..i + 8].try_into().unwrap());
    let version = u32_at(8);
    if version != HISTORY_VERSION {
        return Err(HistoryCodecError::BadVersion { version });
    }
    let crash_event = u64_at(16);
    let ninitial = u64_at(24) as usize;
    let nops = u64_at(32) as usize;
    let body_len = HISTORY_HEADER_LEN
        + ninitial
            .checked_mul(8)
            .and_then(|a| {
                nops.checked_mul(HISTORY_RECORD_LEN)
                    .and_then(|b| a.checked_add(b))
            })
            .ok_or(HistoryCodecError::Truncated)?;
    if bytes.len() < body_len + 8 {
        return Err(HistoryCodecError::Truncated);
    }
    let crc = u64_at(body_len);
    if crc != crate::crc::crc64(&bytes[..body_len]) {
        return Err(HistoryCodecError::BadCrc);
    }
    let mut initial = Vec::with_capacity(ninitial);
    let mut off = HISTORY_HEADER_LEN;
    for _ in 0..ninitial {
        initial.push(u64_at(off));
        off += 8;
    }
    let mut ops = Vec::with_capacity(nops);
    for _ in 0..nops {
        let thread = u32_at(off);
        let op = SetOp::from_code(bytes[off + 4]).ok_or(HistoryCodecError::BadOp {
            code: bytes[off + 4],
        })?;
        let result = match bytes[off + 5] {
            0 => None,
            1 => Some(false),
            2 => Some(true),
            code => return Err(HistoryCodecError::BadResult { code }),
        };
        ops.push(OpRecord {
            thread,
            op,
            key: u64_at(off + 8),
            result,
            stamp: u64_at(off + 16),
            invoke_event: u64_at(off + 24),
            durable_event: u64_at(off + 32),
        });
        off += HISTORY_RECORD_LEN;
    }
    Ok((History { initial, ops }, crash_event))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn rec(
        thread: u32,
        op: SetOp,
        key: u64,
        result: Option<bool>,
        stamp: u64,
        invoke: u64,
        durable: u64,
    ) -> OpRecord {
        OpRecord {
            thread,
            op,
            key,
            result,
            stamp,
            invoke_event: invoke,
            durable_event: durable,
        }
    }

    #[test]
    fn valid_history_is_explained() {
        // T0 durably inserts 1; T1's insert of 2 is in flight at the
        // crash (event 10): both {1} and {1, 2} are valid recoveries.
        let h = History {
            initial: vec![],
            ops: vec![
                rec(0, SetOp::Insert, 1, Some(true), 1, 0, 4),
                rec(1, SetOp::Insert, 2, None, 2, 5, u64::MAX),
            ],
        };
        assert!(check(&h, 10, &[1]).ok());
        assert!(check(&h, 10, &[1, 2]).ok());
    }

    #[test]
    fn lost_durable_insert_is_flagged() {
        let h = History {
            initial: vec![],
            ops: vec![rec(0, SetOp::Insert, 7, Some(true), 1, 0, 3)],
        };
        let r = check(&h, 10, &[]);
        assert_eq!(
            r.violations,
            vec![Violation::LostDurableOp { key: 7, stamp: 1 }]
        );
    }

    #[test]
    fn resurrected_key_after_durable_remove_is_flagged() {
        let h = History {
            initial: vec![3],
            ops: vec![rec(0, SetOp::Remove, 3, Some(true), 1, 0, 2)],
        };
        let r = check(&h, 10, &[3]);
        assert_eq!(
            r.violations,
            vec![Violation::LostDurableOp { key: 3, stamp: 1 }]
        );
    }

    #[test]
    fn phantom_key_is_flagged() {
        let h = History {
            initial: vec![],
            ops: vec![rec(0, SetOp::Insert, 1, Some(true), 1, 0, 2)],
        };
        let r = check(&h, 10, &[1, 99]);
        assert_eq!(r.violations, vec![Violation::PhantomKey { key: 99 }]);
    }

    #[test]
    fn torn_pair_keeps_later_non_durable_op_only() {
        // Insert A durable, insert B completed but not durable: a torn
        // image may keep B while a broken protocol loses A. Keeping both
        // or just A is fine; losing A is a violation whatever happened
        // to B.
        let h = History {
            initial: vec![],
            ops: vec![
                rec(0, SetOp::Insert, 10, Some(true), 1, 0, 3),
                rec(1, SetOp::Insert, 20, Some(true), 2, 4, 9),
            ],
        };
        assert!(check(&h, 8, &[10, 20]).ok());
        assert!(check(&h, 8, &[10]).ok());
        let r = check(&h, 8, &[20]);
        assert_eq!(
            r.violations,
            vec![Violation::LostDurableOp { key: 10, stamp: 1 }]
        );
    }

    #[test]
    fn inconsistent_durable_results_are_flagged() {
        // Two durable inserts of the same key both claim "inserted" with
        // no remove in between: no linearization explains that.
        let h = History {
            initial: vec![],
            ops: vec![
                rec(0, SetOp::Insert, 5, Some(true), 1, 0, 2),
                rec(1, SetOp::Insert, 5, Some(true), 2, 0, 4),
            ],
        };
        let r = check(&h, 10, &[5]);
        assert_eq!(
            r.violations,
            vec![Violation::Inconsistent { key: 5, stamp: 1 }]
        );
    }

    #[test]
    fn ops_invoked_after_the_crash_are_excluded() {
        // Invoked at event 10 >= crash event 10: even a "durable-looking"
        // record cannot constrain the image.
        let h = History {
            initial: vec![],
            ops: vec![rec(0, SetOp::Insert, 1, Some(true), 1, 10, 11)],
        };
        assert!(check(&h, 10, &[]).ok());
    }

    #[test]
    fn interleaved_required_and_optional_ops_search_choices() {
        // Durable: insert 4 then remove 4. An in-flight insert of 4
        // after the remove may or may not have landed: both recoveries
        // pass.
        let h = History {
            initial: vec![],
            ops: vec![
                rec(0, SetOp::Insert, 4, Some(true), 1, 0, 2),
                rec(0, SetOp::Remove, 4, Some(true), 2, 2, 4),
                rec(1, SetOp::Insert, 4, None, 3, 5, u64::MAX),
            ],
        };
        assert!(check(&h, 9, &[]).ok());
        assert!(check(&h, 9, &[4]).ok());
    }

    #[test]
    fn durable_contains_constrains_the_linearization() {
        // A durable contains(6) == true with no insert anywhere is a lie.
        let h = History {
            initial: vec![],
            ops: vec![rec(0, SetOp::Contains, 6, Some(true), 1, 0, 2)],
        };
        let r = check(&h, 10, &[]);
        assert_eq!(
            r.violations,
            vec![Violation::Inconsistent { key: 6, stamp: 1 }]
        );
    }

    #[test]
    fn codec_roundtrips() {
        let h = History {
            initial: vec![1, 2, 3],
            ops: vec![
                rec(0, SetOp::Insert, 10, Some(true), 1, 0, 4),
                rec(1, SetOp::Remove, 2, Some(true), 2, 1, 6),
                rec(1, SetOp::Contains, 3, Some(true), 3, 2, 7),
                rec(0, SetOp::Insert, 11, None, 4, 8, u64::MAX),
            ],
        };
        let bytes = encode_history(&h, 42);
        let (back, crash) = decode_history(&bytes).unwrap();
        assert_eq!(back, h);
        assert_eq!(crash, 42);
    }

    #[test]
    fn codec_rejects_damage() {
        let h = History {
            initial: vec![9],
            ops: vec![rec(0, SetOp::Insert, 1, Some(true), 1, 0, 2)],
        };
        let good = encode_history(&h, 5);
        for cut in 0..good.len() {
            assert!(decode_history(&good[..cut]).is_err(), "cut at {cut}");
        }
        let mut flipped = good.clone();
        flipped[HISTORY_HEADER_LEN + 2] ^= 1;
        assert_eq!(decode_history(&flipped), Err(HistoryCodecError::BadCrc));
        let mut bad_magic = good.clone();
        bad_magic[0] ^= 0xFF;
        assert_eq!(decode_history(&bad_magic), Err(HistoryCodecError::BadMagic));
        let mut bad_version = good;
        bad_version[8] = 9;
        // CRC is checked only after the version gate, so this reports the
        // version, not the checksum.
        assert_eq!(
            decode_history(&bad_version),
            Err(HistoryCodecError::BadVersion { version: 9 })
        );
    }

    /// Sequential model: apply random fully-durable ops in order; the
    /// exact final state must check clean, and deleting a durably
    /// inserted key (or resurrecting a durably removed one) must not.
    fn run_model(seed: u64, nops: usize) -> (History, Vec<u64>) {
        let mut state: Vec<u64> = Vec::new();
        let mut ops = Vec::new();
        let mut x = seed;
        for i in 0..nops {
            x = crate::shadow::splitmix64(x.wrapping_add(1));
            let key = x % 8;
            let op = match (x >> 8) % 3 {
                0 => SetOp::Insert,
                1 => SetOp::Remove,
                _ => SetOp::Contains,
            };
            let present = state.contains(&key);
            let result = match op {
                SetOp::Insert => {
                    if !present {
                        state.push(key);
                    }
                    !present
                }
                SetOp::Remove => {
                    state.retain(|&k| k != key);
                    present
                }
                SetOp::Contains => present,
            };
            ops.push(OpRecord {
                thread: (x % 4) as u32,
                op,
                key,
                result: Some(result),
                stamp: i as u64 + 1,
                invoke_event: i as u64,
                durable_event: i as u64 + 1,
            });
        }
        state.sort_unstable();
        (
            History {
                initial: vec![],
                ops,
            },
            state,
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn sequential_durable_histories_check_clean(seed in any::<u64>(), nops in 1usize..40) {
            let (h, state) = run_model(seed, nops);
            let crash = nops as u64 + 2; // after every durable point
            prop_assert!(check(&h, crash, &state).ok());
        }

        #[test]
        fn perturbed_recoveries_are_rejected(seed in any::<u64>(), nops in 1usize..40) {
            let (h, state) = run_model(seed, nops);
            let crash = nops as u64 + 2;
            if let Some(&k) = state.first() {
                // Losing a durably present key must be flagged.
                let lost: Vec<u64> = state.iter().copied().filter(|&x| x != k).collect();
                prop_assert!(!check(&h, crash, &lost).ok());
            }
            // A key never mentioned anywhere is a phantom.
            let mut phantom = state.clone();
            phantom.push(0xDEAD_BEEF);
            let r = check(&h, crash, &phantom);
            prop_assert!(r.violations.contains(&Violation::PhantomKey { key: 0xDEAD_BEEF }));
        }
    }
}
