//! Incremental checkpointing and replication of regions over dirty-line
//! deltas.
//!
//! Position independence is what makes replication *cheap to get right*:
//! an off-holder or RIV image is valid at any mapping address, so a
//! replica can be rebuilt from a byte-for-byte base snapshot plus the set
//! of cache lines whose durable contents changed — no swizzling pass, no
//! pointer fix-up, no knowledge of the data structures inside. This
//! module turns the [`crate::shadow`] tracker into exactly that engine:
//!
//! * **Delta stream** — a versioned, CRC-64-sealed record stream: one
//!   `BaseSnapshot` record (epoch 0), then `Delta` records, each carrying
//!   the 64 B lines dirtied since the previous durability point with a
//!   monotonic epoch number and a `prev_epoch` back-link (so coalesced
//!   epoch ranges still chain), closed by a `Seal` trailer record.
//!
//!   ```text
//!   stream  := header record*
//!   header  := magic:u64 "NVPIRPL1" | version:u32 | rid:u32 | size:u64
//!   record  := kind:u32 | flags:u32 | epoch:u64 | prev_epoch:u64
//!              | payload_len:u64 | crc64:u64 | payload
//!   base    := kind 1, payload = full region image   (epoch 0)
//!   delta   := kind 2, payload = nlines:u64 (line:u32 bytes:[u8;64])*
//!   seal    := kind 3, payload empty, epoch = final epoch
//!   ```
//!
//!   The CRC-64/XZ of each record covers the 32 header bytes before the
//!   `crc64` field plus the payload, so a torn append or rotted byte is
//!   caught per record.
//!
//! * **Capture** — [`on_durability_point`] runs at every region
//!   durability point ([`crate::Region::sync`],
//!   [`crate::Region::update_meta_slots`], `pstore` transaction commit)
//!   and drains the shadow tracker's replication dirty set; writers are
//!   blocked only for the line copy, never for the ship.
//!
//! * **Background replicator** — [`Replicator`] ships encoded deltas on a
//!   worker thread through a bounded queue with a policy-selectable
//!   backpressure response ([`Backpressure::Stall`] blocks the writer,
//!   [`Backpressure::Coalesce`] merges into the newest queued delta) and
//!   retry-with-backoff on transient sink I/O errors. Everything is
//!   counted in [`crate::metrics`].
//!
//! * **Apply & promotion** — [`apply_stream`] replays a stream in epoch
//!   order, rejecting gaps and CRC failures; [`promote`] applies a sealed
//!   stream to an image file and opens it with
//!   [`crate::Region::open_file`] at whatever address is free — the
//!   position-independence proof.

use crate::crc;
use crate::error::{NvError, Result};
use crate::metrics::{self, Counter};
use crate::region::Region;
use crate::shadow::{self, SHADOW_LINE};
use std::collections::VecDeque;
use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Magic opening a delta stream (`"NVPIRPL1"`).
pub const STREAM_MAGIC: u64 = u64::from_le_bytes(*b"NVPIRPL1");
/// Current stream format version.
pub const STREAM_VERSION: u32 = 1;
/// Encoded size of the stream header.
pub const STREAM_HEADER_LEN: usize = 24;
/// Encoded size of a record header (including the CRC field).
pub const RECORD_HEADER_LEN: usize = 40;
/// Encoded size of one delta line (index + bytes).
pub const DELTA_LINE_LEN: usize = 4 + SHADOW_LINE;

const KIND_BASE: u32 = 1;
const KIND_DELTA: u32 = 2;
const KIND_SEAL: u32 = 3;

/// One 64 B line of a delta: its index and its durable bytes.
#[derive(Clone, PartialEq, Eq)]
pub struct DeltaLine {
    /// Line index (offset / [`SHADOW_LINE`]) within the region.
    pub line: u32,
    /// The line's durable contents.
    pub bytes: [u8; SHADOW_LINE],
}

impl std::fmt::Debug for DeltaLine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "DeltaLine({})", self.line)
    }
}

/// The set of lines made durable between two durability points.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delta {
    /// This delta's epoch (monotonically increasing, starting at 1).
    pub epoch: u64,
    /// The epoch this delta applies on top of. Consecutive captures have
    /// `prev_epoch == epoch - 1`; a coalesced delta spans a wider range
    /// but keeps the chain intact.
    pub prev_epoch: u64,
    /// Dirtied lines, ascending by index.
    pub lines: Vec<DeltaLine>,
}

impl Delta {
    /// Merges `newer` into `self` (coalescing backpressure): the union of
    /// the line sets with `newer`'s bytes winning, spanning
    /// `self.prev_epoch ..= newer.epoch`.
    pub fn merge(&mut self, newer: Delta) {
        debug_assert_eq!(newer.prev_epoch, self.epoch, "merge must chain");
        self.epoch = newer.epoch;
        for nl in newer.lines {
            match self.lines.binary_search_by_key(&nl.line, |l| l.line) {
                Ok(i) => self.lines[i] = nl,
                Err(i) => self.lines.insert(i, nl),
            }
        }
    }
}

/// A decoded stream record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Record {
    /// Full region image at epoch 0.
    Base(Vec<u8>),
    /// Incremental delta.
    Delta(Delta),
    /// Stream trailer: the stream is complete up to `epoch`.
    Seal {
        /// Final epoch of the sealed stream.
        epoch: u64,
    },
}

/// Errors produced by the delta-stream decoder, replayer and replicator.
#[derive(Debug)]
pub enum ReplError {
    /// The stream ends mid-header or mid-record: a torn append. The
    /// offset is where the incomplete data starts.
    TornStream {
        /// Byte offset of the torn record.
        offset: usize,
    },
    /// The stream does not start with [`STREAM_MAGIC`].
    BadMagic,
    /// Unsupported stream version.
    BadVersion(u32),
    /// A record's CRC-64 does not match its contents.
    BadCrc {
        /// Byte offset of the failing record.
        offset: usize,
        /// Epoch claimed by the failing record.
        epoch: u64,
    },
    /// A delta's `prev_epoch` does not chain to the last applied epoch.
    EpochGap {
        /// The epoch the stream state was at.
        expected: u64,
        /// The `prev_epoch` the delta claimed.
        found: u64,
    },
    /// The first record is not a base snapshot (or a second one appears).
    MissingBase,
    /// The stream has no seal trailer and the caller required one.
    Unsealed,
    /// A record payload is malformed (bad length, line out of range,
    /// data after the seal, seal epoch mismatch).
    BadRecord {
        /// Byte offset of the offending record.
        offset: usize,
        /// What is wrong with it.
        detail: String,
    },
    /// Replicator sink failure that exhausted its retries.
    Io(std::io::Error),
}

impl std::fmt::Display for ReplError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplError::TornStream { offset } => {
                write!(f, "torn delta stream: truncated record at offset {offset}")
            }
            ReplError::BadMagic => write!(f, "not a delta stream (bad magic)"),
            ReplError::BadVersion(v) => write!(f, "unsupported delta-stream version {v}"),
            ReplError::BadCrc { offset, epoch } => {
                write!(f, "record crc mismatch at offset {offset} (epoch {epoch})")
            }
            ReplError::EpochGap { expected, found } => {
                write!(
                    f,
                    "epoch gap: delta chains to {found}, stream is at {expected}"
                )
            }
            ReplError::MissingBase => write!(f, "stream must start with exactly one base snapshot"),
            ReplError::Unsealed => write!(f, "stream has no seal trailer"),
            ReplError::BadRecord { offset, detail } => {
                write!(f, "bad record at offset {offset}: {detail}")
            }
            ReplError::Io(e) => write!(f, "replication i/o error: {e}"),
        }
    }
}

impl std::error::Error for ReplError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReplError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ReplError {
    fn from(e: std::io::Error) -> ReplError {
        ReplError::Io(e)
    }
}

impl From<ReplError> for NvError {
    fn from(e: ReplError) -> NvError {
        match e {
            ReplError::Io(e) => NvError::Io(e),
            other => NvError::BadImage(format!("delta stream: {other}")),
        }
    }
}

// -- encoding ----------------------------------------------------------------

/// Encodes the stream header for a region of `size` bytes.
pub fn encode_header(rid: u32, size: u64) -> [u8; STREAM_HEADER_LEN] {
    let mut out = [0u8; STREAM_HEADER_LEN];
    out[0..8].copy_from_slice(&STREAM_MAGIC.to_le_bytes());
    out[8..12].copy_from_slice(&STREAM_VERSION.to_le_bytes());
    out[12..16].copy_from_slice(&rid.to_le_bytes());
    out[16..24].copy_from_slice(&size.to_le_bytes());
    out
}

fn encode_record(kind: u32, epoch: u64, prev_epoch: u64, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(RECORD_HEADER_LEN + payload.len());
    out.extend_from_slice(&kind.to_le_bytes());
    out.extend_from_slice(&0u32.to_le_bytes()); // flags, reserved
    out.extend_from_slice(&epoch.to_le_bytes());
    out.extend_from_slice(&prev_epoch.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    let crc = crc::crc64_update(crc::crc64_update(!0, &out), payload) ^ !0;
    out.extend_from_slice(&crc.to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Encodes a base-snapshot record (epoch 0) from a full region image.
pub fn encode_base(image: &[u8]) -> Vec<u8> {
    encode_record(KIND_BASE, 0, 0, image)
}

/// Encodes a delta record.
pub fn encode_delta(d: &Delta) -> Vec<u8> {
    let mut payload = Vec::with_capacity(8 + d.lines.len() * DELTA_LINE_LEN);
    payload.extend_from_slice(&(d.lines.len() as u64).to_le_bytes());
    for l in &d.lines {
        payload.extend_from_slice(&l.line.to_le_bytes());
        payload.extend_from_slice(&l.bytes);
    }
    encode_record(KIND_DELTA, d.epoch, d.prev_epoch, &payload)
}

/// Encodes the seal trailer closing a stream at `epoch`.
pub fn encode_seal(epoch: u64) -> Vec<u8> {
    encode_record(KIND_SEAL, epoch, epoch, &[])
}

// -- decoding ----------------------------------------------------------------

/// Identity fields of a decoded stream header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamMeta {
    /// Format version.
    pub version: u32,
    /// Region ID the stream replicates.
    pub rid: u32,
    /// Region size in bytes.
    pub region_size: u64,
}

fn decode_stream_header(bytes: &[u8]) -> std::result::Result<StreamMeta, ReplError> {
    if bytes.len() < STREAM_HEADER_LEN {
        return Err(ReplError::TornStream { offset: 0 });
    }
    let word = |a: usize| u64::from_le_bytes(bytes[a..a + 8].try_into().unwrap());
    let half = |a: usize| u32::from_le_bytes(bytes[a..a + 4].try_into().unwrap());
    if word(0) != STREAM_MAGIC {
        return Err(ReplError::BadMagic);
    }
    let version = half(8);
    if version != STREAM_VERSION {
        return Err(ReplError::BadVersion(version));
    }
    Ok(StreamMeta {
        version,
        rid: half(12),
        region_size: word(16),
    })
}

/// One record pulled off the stream at `offset`: `(record, encoded_len)`.
fn decode_record_at(
    bytes: &[u8],
    offset: usize,
) -> std::result::Result<(Record, usize), ReplError> {
    let rest = &bytes[offset..];
    if rest.len() < RECORD_HEADER_LEN {
        return Err(ReplError::TornStream { offset });
    }
    let half = |a: usize| u32::from_le_bytes(rest[a..a + 4].try_into().unwrap());
    let word = |a: usize| u64::from_le_bytes(rest[a..a + 8].try_into().unwrap());
    let kind = half(0);
    let epoch = word(8);
    let prev_epoch = word(16);
    let payload_len = word(24) as usize;
    let want_crc = word(32);
    let Some(payload) = rest.get(RECORD_HEADER_LEN..RECORD_HEADER_LEN + payload_len) else {
        return Err(ReplError::TornStream { offset });
    };
    let got_crc = crc::crc64_update(crc::crc64_update(!0, &rest[..32]), payload) ^ !0;
    if got_crc != want_crc {
        return Err(ReplError::BadCrc { offset, epoch });
    }
    let total = RECORD_HEADER_LEN + payload_len;
    let bad = |detail: String| ReplError::BadRecord { offset, detail };
    let record = match kind {
        KIND_BASE => {
            if epoch != 0 || prev_epoch != 0 {
                return Err(bad(format!("base snapshot at nonzero epoch {epoch}")));
            }
            Record::Base(payload.to_vec())
        }
        KIND_DELTA => {
            if payload_len < 8 {
                return Err(bad("delta payload shorter than its count".into()));
            }
            let nlines = u64::from_le_bytes(payload[0..8].try_into().unwrap()) as usize;
            if payload_len != 8 + nlines * DELTA_LINE_LEN {
                return Err(bad(format!(
                    "delta claims {nlines} lines but payload is {payload_len} bytes"
                )));
            }
            if epoch == 0 || prev_epoch >= epoch {
                return Err(bad(format!(
                    "delta epochs must ascend (epoch {epoch}, prev {prev_epoch})"
                )));
            }
            let mut lines = Vec::with_capacity(nlines);
            for i in 0..nlines {
                let at = 8 + i * DELTA_LINE_LEN;
                let line = u32::from_le_bytes(payload[at..at + 4].try_into().unwrap());
                let mut b = [0u8; SHADOW_LINE];
                b.copy_from_slice(&payload[at + 4..at + 4 + SHADOW_LINE]);
                lines.push(DeltaLine { line, bytes: b });
            }
            Record::Delta(Delta {
                epoch,
                prev_epoch,
                lines,
            })
        }
        KIND_SEAL => {
            if payload_len != 0 {
                return Err(bad("seal record carries a payload".into()));
            }
            Record::Seal { epoch }
        }
        other => return Err(bad(format!("unknown record kind {other}"))),
    };
    Ok((record, total))
}

/// Strictly decodes a whole stream: header, every record, CRCs. Does not
/// validate the epoch *chain* (that is [`apply_stream`]'s job) but does
/// reject torn tails, trailing garbage, and records after the seal.
///
/// # Errors
///
/// Any [`ReplError`]; truncation at any byte boundary yields
/// [`ReplError::TornStream`], never a panic.
pub fn decode_stream(bytes: &[u8]) -> std::result::Result<(StreamMeta, Vec<Record>), ReplError> {
    let meta = decode_stream_header(bytes)?;
    let mut records = Vec::new();
    let mut offset = STREAM_HEADER_LEN;
    let mut sealed = false;
    while offset < bytes.len() {
        if sealed {
            return Err(ReplError::BadRecord {
                offset,
                detail: "data after the seal trailer".into(),
            });
        }
        let (rec, len) = decode_record_at(bytes, offset)?;
        sealed = matches!(rec, Record::Seal { .. });
        records.push(rec);
        offset += len;
    }
    Ok((meta, records))
}

/// What [`apply_stream`] reconstructed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ApplyReport {
    /// The epoch the replica is at after the replay.
    pub epoch: u64,
    /// Delta records applied.
    pub deltas_applied: u64,
    /// Total lines written by deltas.
    pub lines_applied: u64,
    /// Whether a valid seal trailer closed the stream.
    pub sealed: bool,
    /// Whether a torn tail record was discarded (only possible when the
    /// caller did not require a seal).
    pub tail_discarded: bool,
}

/// Replays a delta stream into a replica image: base snapshot first, then
/// every delta in epoch order (gaps and CRC failures rejected), stopping
/// at the seal.
///
/// With `require_seal`, an unsealed stream is an error — the promotion
/// rule. Without it (recovering from a primary that died mid-ship), a
/// *torn tail* record is discarded cleanly — the replica fully lacks that
/// epoch, it never partially applies — but damage anywhere before the
/// tail is still an error.
///
/// # Errors
///
/// Any [`ReplError`]. Failures bump the `repl_apply_failures` counter.
pub fn apply_stream(
    bytes: &[u8],
    require_seal: bool,
) -> std::result::Result<(Vec<u8>, ApplyReport), ReplError> {
    apply_stream_inner(bytes, require_seal).inspect_err(|_e| {
        metrics::incr(Counter::ReplApplyFailures);
    })
}

fn apply_stream_inner(
    bytes: &[u8],
    require_seal: bool,
) -> std::result::Result<(Vec<u8>, ApplyReport), ReplError> {
    let meta = decode_stream_header(bytes)?;
    let mut image: Option<Vec<u8>> = None;
    let mut report = ApplyReport {
        epoch: 0,
        deltas_applied: 0,
        lines_applied: 0,
        sealed: false,
        tail_discarded: false,
    };
    let mut offset = STREAM_HEADER_LEN;
    if offset >= bytes.len() {
        return Err(ReplError::MissingBase);
    }
    while offset < bytes.len() {
        let (rec, len) = match decode_record_at(bytes, offset) {
            Ok(ok) => ok,
            // A torn *tail* is a clean stop when no seal is required: the
            // interrupted epoch is fully absent from the replica.
            Err(ReplError::TornStream { .. }) if !require_seal && image.is_some() => {
                report.tail_discarded = true;
                break;
            }
            Err(e) => return Err(e),
        };
        match rec {
            Record::Base(img) => {
                if image.is_some() {
                    return Err(ReplError::MissingBase);
                }
                if img.len() as u64 != meta.region_size {
                    return Err(ReplError::BadRecord {
                        offset,
                        detail: format!(
                            "base snapshot is {} bytes, header says {}",
                            img.len(),
                            meta.region_size
                        ),
                    });
                }
                image = Some(img);
            }
            Record::Delta(d) => {
                let Some(img) = image.as_mut() else {
                    return Err(ReplError::MissingBase);
                };
                if d.prev_epoch != report.epoch {
                    return Err(ReplError::EpochGap {
                        expected: report.epoch,
                        found: d.prev_epoch,
                    });
                }
                for l in &d.lines {
                    let off = l.line as usize * SHADOW_LINE;
                    if off >= img.len() {
                        return Err(ReplError::BadRecord {
                            offset,
                            detail: format!("line {} is outside the region", l.line),
                        });
                    }
                    let take = SHADOW_LINE.min(img.len() - off);
                    img[off..off + take].copy_from_slice(&l.bytes[..take]);
                    report.lines_applied += 1;
                }
                report.epoch = d.epoch;
                report.deltas_applied += 1;
                metrics::incr(Counter::ReplDeltasApplied);
            }
            Record::Seal { epoch } => {
                if image.is_none() {
                    return Err(ReplError::MissingBase);
                }
                if epoch != report.epoch {
                    return Err(ReplError::BadRecord {
                        offset,
                        detail: format!("seal at epoch {epoch}, stream is at {}", report.epoch),
                    });
                }
                report.sealed = true;
                offset += len;
                if offset < bytes.len() {
                    return Err(ReplError::BadRecord {
                        offset,
                        detail: "data after the seal trailer".into(),
                    });
                }
                break;
            }
        }
        offset += len;
    }
    let Some(image) = image else {
        return Err(ReplError::MissingBase);
    };
    if require_seal && !report.sealed {
        return Err(ReplError::Unsealed);
    }
    Ok((image, report))
}

/// Applies the sealed stream at `stream`, writes the replica image to
/// `image_out`, and opens it as a region at whatever segment is free —
/// replica promotion. The opened replica reports
/// [`Region::was_dirty`] exactly as a crashed primary would, so recovery
/// layers (e.g. `pstore` undo-log rollback) run as usual.
///
/// # Errors
///
/// Stream decode/replay failures (as [`NvError::BadImage`]), I/O, and
/// anything [`Region::open_file`] can return.
pub fn promote<P: AsRef<Path>, Q: AsRef<Path>>(stream: P, image_out: Q) -> Result<Region> {
    let bytes = std::fs::read(stream)?;
    let (image, _report) = apply_stream(&bytes, true).map_err(NvError::from)?;
    std::fs::write(&image_out, &image)?;
    Region::open_file(image_out)
}

/// [`promote`], but the replica is guaranteed to map at a base address
/// different from `avoid` (the failed primary's base). Failover callers
/// use this so the promotion itself exercises position independence:
/// fat-table rebind and RIV translation must hold at the new address.
///
/// # Errors
///
/// As [`promote`], plus [`NvError::BadImage`] if no distinct base can be
/// found (see [`Region::open_file_avoiding`]).
pub fn promote_avoiding<P: AsRef<Path>, Q: AsRef<Path>>(
    stream: P,
    image_out: Q,
    avoid: usize,
) -> Result<Region> {
    let bytes = std::fs::read(stream)?;
    let (image, _report) = apply_stream(&bytes, true).map_err(NvError::from)?;
    std::fs::write(&image_out, &image)?;
    Region::open_file_avoiding(image_out, avoid)
}

// -- stream inspection (nvr_inspect) -----------------------------------------

/// Summary of one record for [`inspect_stream`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecordSummary {
    /// Record kind: `"base"`, `"delta"`, or `"seal"`.
    pub kind: &'static str,
    /// Record epoch.
    pub epoch: u64,
    /// Chained-from epoch.
    pub prev_epoch: u64,
    /// Lines carried (deltas) or image bytes (base).
    pub lines: u64,
    /// Encoded payload size.
    pub payload_bytes: u64,
    /// Byte offset of the record in the stream.
    pub offset: usize,
}

/// Lenient dump of a delta stream for diagnostics: walks records until
/// the first problem, never fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamDump {
    /// Header identity (when the header itself decodes).
    pub meta: Option<StreamMeta>,
    /// Every record up to the first problem.
    pub records: Vec<RecordSummary>,
    /// Whether a seal trailer was reached.
    pub sealed: bool,
    /// Epoch of the last intact delta (or seal).
    pub last_epoch: u64,
    /// The first decode problem, if any.
    pub problem: Option<String>,
    /// Total stream length in bytes.
    pub total_bytes: usize,
}

/// Walks a stream leniently, summarizing each record until the first
/// problem. Used by the `nvr_inspect repl` subcommand.
pub fn inspect_stream(bytes: &[u8]) -> StreamDump {
    let mut dump = StreamDump {
        meta: None,
        records: Vec::new(),
        sealed: false,
        last_epoch: 0,
        problem: None,
        total_bytes: bytes.len(),
    };
    match decode_stream_header(bytes) {
        Ok(meta) => dump.meta = Some(meta),
        Err(e) => {
            dump.problem = Some(e.to_string());
            return dump;
        }
    }
    let mut offset = STREAM_HEADER_LEN;
    while offset < bytes.len() {
        if dump.sealed {
            dump.problem = Some(format!("data after the seal trailer at offset {offset}"));
            break;
        }
        match decode_record_at(bytes, offset) {
            Ok((rec, len)) => {
                let summary = match &rec {
                    Record::Base(img) => RecordSummary {
                        kind: "base",
                        epoch: 0,
                        prev_epoch: 0,
                        lines: 0,
                        payload_bytes: img.len() as u64,
                        offset,
                    },
                    Record::Delta(d) => RecordSummary {
                        kind: "delta",
                        epoch: d.epoch,
                        prev_epoch: d.prev_epoch,
                        lines: d.lines.len() as u64,
                        payload_bytes: (8 + d.lines.len() * DELTA_LINE_LEN) as u64,
                        offset,
                    },
                    Record::Seal { epoch } => RecordSummary {
                        kind: "seal",
                        epoch: *epoch,
                        prev_epoch: *epoch,
                        lines: 0,
                        payload_bytes: 0,
                        offset,
                    },
                };
                match &rec {
                    Record::Delta(d) => dump.last_epoch = d.epoch,
                    Record::Seal { .. } => dump.sealed = true,
                    Record::Base(_) => {}
                }
                dump.records.push(summary);
                offset += len;
            }
            Err(e) => {
                dump.problem = Some(e.to_string());
                break;
            }
        }
    }
    dump
}

// -- capture -----------------------------------------------------------------

/// A replication source bound to a live, shadow-tracked region. Created
/// by [`Replicator::attach`]; owns the epoch counter and drains the
/// shadow tracker's replication dirty set.
#[derive(Debug)]
pub struct ReplSource {
    base: usize,
    rid: u32,
    size: usize,
    last_epoch: u64,
    detached: bool,
}

impl ReplSource {
    /// Binds a source to `region` and returns it together with the base
    /// snapshot (the region's durable view at epoch 0).
    ///
    /// # Errors
    ///
    /// [`NvError::ShadowNotEnabled`] unless
    /// [`Region::enable_shadow`] was called first.
    pub fn new(region: &Region) -> Result<(ReplSource, Vec<u8>)> {
        shadow::repl_attach(region.base())?;
        let image = shadow::persisted_view(region.base()).ok_or(NvError::ShadowNotEnabled {
            base: region.base(),
        })?;
        Ok((
            ReplSource {
                base: region.base(),
                rid: region.rid(),
                size: region.size(),
                last_epoch: 0,
                detached: false,
            },
            image,
        ))
    }

    /// The region ID this source replicates.
    pub fn rid(&self) -> u32 {
        self.rid
    }

    /// The region size in bytes.
    pub fn size(&self) -> usize {
        self.size
    }

    /// The epoch of the last captured delta (0 before the first).
    pub fn last_epoch(&self) -> u64 {
        self.last_epoch
    }

    /// Drains the dirty set into the next delta. `None` when nothing
    /// became durable since the last capture (or the region is gone).
    pub fn capture(&mut self) -> Option<Delta> {
        if self.detached {
            return None;
        }
        let drained = shadow::repl_drain(self.base)?;
        if drained.is_empty() {
            return None;
        }
        let epoch = self.last_epoch + 1;
        let prev_epoch = self.last_epoch;
        self.last_epoch = epoch;
        Some(Delta {
            epoch,
            prev_epoch,
            lines: drained
                .into_iter()
                .map(|(line, bytes)| DeltaLine { line, bytes })
                .collect(),
        })
    }

    fn detach(&mut self) {
        if !self.detached {
            shadow::repl_detach(self.base);
            self.detached = true;
        }
    }
}

impl Drop for ReplSource {
    fn drop(&mut self) {
        self.detach();
    }
}

// -- background replicator ---------------------------------------------------

/// What the replicator does when its bounded queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backpressure {
    /// The writer blocks at the durability point until the queue drains —
    /// no epoch is ever merged, at the cost of stalling the hot path.
    Stall,
    /// The new delta is merged into the newest queued one
    /// ([`Delta::merge`]); the writer never blocks but the stream carries
    /// coarser epochs.
    Coalesce,
}

/// Tuning for a [`Replicator`].
#[derive(Debug, Clone)]
pub struct ReplicatorConfig {
    /// Maximum queued (unshipped) deltas before backpressure applies.
    pub queue_depth: usize,
    /// Backpressure response when the queue is full.
    pub backpressure: Backpressure,
    /// Transient sink I/O errors tolerated per record before the
    /// replicator gives up.
    pub max_retries: u32,
    /// Backoff before the first retry (doubled per subsequent retry,
    /// capped at [`ReplicatorConfig::retry_backoff_max`]).
    pub retry_backoff: Duration,
    /// Ceiling on the exponential retry backoff: no single wait between
    /// attempts exceeds this, however many attempts are configured.
    pub retry_backoff_max: Duration,
}

impl Default for ReplicatorConfig {
    fn default() -> ReplicatorConfig {
        ReplicatorConfig {
            queue_depth: 8,
            backpressure: Backpressure::Stall,
            max_retries: 4,
            retry_backoff: Duration::from_millis(1),
            retry_backoff_max: Duration::from_millis(100),
        }
    }
}

/// The capped exponential backoff policy shared by the replicator worker
/// and the region server's tenant retries: `base * 2^attempt`, saturating
/// at `max` (attempt 0 is the wait before the first retry).
pub fn capped_backoff(base: Duration, max: Duration, attempt: u32) -> Duration {
    let factor = 1u32.checked_shl(attempt.min(31)).unwrap_or(u32::MAX);
    base.saturating_mul(factor).min(max)
}

/// Destination of encoded stream bytes. Implemented for files; tests use
/// in-memory and fault-injecting sinks.
pub trait ReplSink: Send {
    /// Appends `bytes` at the end of the stream.
    ///
    /// # Errors
    ///
    /// I/O failure; the replicator retries with backoff.
    fn append(&mut self, bytes: &[u8]) -> std::io::Result<()>;
}

/// File-backed sink (append-only).
#[derive(Debug)]
struct FileSink {
    file: std::fs::File,
}

impl ReplSink for FileSink {
    fn append(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        self.file.write_all(bytes)?;
        self.file.flush()
    }
}

/// In-memory sink sharing its buffer with the test that created it.
#[derive(Debug, Default)]
pub struct MemorySink {
    buf: Arc<Mutex<Vec<u8>>>,
}

impl MemorySink {
    /// A fresh sink plus a handle to the bytes it accumulates.
    pub fn new() -> (MemorySink, Arc<Mutex<Vec<u8>>>) {
        let buf = Arc::new(Mutex::new(Vec::new()));
        (MemorySink { buf: buf.clone() }, buf)
    }
}

impl ReplSink for MemorySink {
    fn append(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        lock(&self.buf).extend_from_slice(bytes);
        Ok(())
    }
}

#[derive(Debug)]
struct QueueState {
    deque: VecDeque<Delta>,
    /// Epoch of the newest enqueued delta.
    emitted_epoch: u64,
    /// Epoch of the newest delta the worker shipped.
    shipped_epoch: u64,
    shutdown: bool,
    /// Set by [`Replicator::drop`] (never by `seal`): the stream is being
    /// abandoned, so a retry ladder in progress gives up immediately
    /// instead of sleeping out its remaining backoff.
    abort: bool,
    /// When set, the worker appends a seal trailer at this epoch after
    /// draining the queue, then exits.
    seal_epoch: Option<u64>,
    /// Permanent sink failure, recorded by the worker.
    failed: Option<String>,
}

#[derive(Debug)]
struct Shared {
    q: Mutex<QueueState>,
    space: Condvar,
    work: Condvar,
    cfg: ReplicatorConfig,
}

struct Session {
    base: usize,
    source: Mutex<ReplSource>,
    shared: Arc<Shared>,
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session").field("base", &self.base).finish()
    }
}

/// Cheap gate consulted by every durability point.
static ACTIVE: AtomicBool = AtomicBool::new(false);
static SESSIONS: Mutex<Vec<Arc<Session>>> = Mutex::new(Vec::new());

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

fn session_for(base: usize) -> Option<Arc<Session>> {
    lock(&SESSIONS).iter().find(|s| s.base == base).cloned()
}

/// Captures and enqueues a delta for the region at `base`, if a
/// [`Replicator`] is attached to it. Called from every region durability
/// point ([`Region::sync`], [`Region::update_meta_slots`], `pstore`
/// transaction commit); a no-op (one relaxed load) otherwise.
pub fn on_durability_point(base: usize) {
    if !ACTIVE.load(Ordering::Relaxed) {
        return;
    }
    let Some(session) = session_for(base) else {
        return;
    };
    let delta = lock(&session.source).capture();
    if let Some(delta) = delta {
        enqueue(&session.shared, delta);
    }
}

/// Region-teardown hook: on a clean close the replica converges on the
/// final image (checkpoint + last capture); on a crash it simply detaches
/// and keeps lagging. Either way the session unregisters — the
/// [`Replicator`] handle stays usable for `seal`/`wait_idle`.
pub(crate) fn on_region_close(base: usize, clean: bool) {
    if !ACTIVE.load(Ordering::Relaxed) {
        return;
    }
    let Some(session) = session_for(base) else {
        return;
    };
    if clean {
        // The dirty-flag clear and final counter folds are untracked
        // stores; a checkpoint routes them into the repl dirty set.
        shadow::checkpoint(base);
        let delta = lock(&session.source).capture();
        if let Some(delta) = delta {
            enqueue(&session.shared, delta);
        }
    }
    lock(&session.source).detach();
    let mut sessions = lock(&SESSIONS);
    sessions.retain(|s| s.base != base);
    if sessions.is_empty() {
        ACTIVE.store(false, Ordering::Relaxed);
    }
}

fn enqueue(shared: &Arc<Shared>, delta: Delta) {
    metrics::incr(Counter::ReplDeltasEmitted);
    let mut q = lock(&shared.q);
    // Integrated lag: how many epochs the replica was behind when this
    // delta was produced.
    metrics::add(
        Counter::ReplLagEpochs,
        q.emitted_epoch.saturating_sub(q.shipped_epoch),
    );
    q.emitted_epoch = delta.epoch;
    if q.failed.is_some() {
        // Dead sink: drop the delta rather than blocking writers forever.
        return;
    }
    if q.deque.len() >= shared.cfg.queue_depth {
        match shared.cfg.backpressure {
            Backpressure::Coalesce => {
                metrics::incr(Counter::ReplDeltasCoalesced);
                let newest = q.deque.back_mut().expect("full queue is nonempty");
                newest.merge(delta);
                shared.work.notify_one();
                return;
            }
            Backpressure::Stall => {
                while q.deque.len() >= shared.cfg.queue_depth && q.failed.is_none() {
                    q = shared.space.wait(q).unwrap_or_else(|e| e.into_inner());
                }
                if q.failed.is_some() {
                    return;
                }
            }
        }
    }
    q.deque.push_back(delta);
    shared.work.notify_one();
}

/// Sleeps out one retry backoff, but wakes early (returning `true`) if
/// the replicator is dropped mid-wait. Waiting on the shared condvar —
/// rather than an uncancellable `thread::sleep` — is what keeps
/// `Replicator` teardown prompt during a retry ladder.
fn backoff_aborted(shared: &Shared, backoff: Duration) -> bool {
    let deadline = Instant::now() + backoff;
    let mut q = lock(&shared.q);
    loop {
        if q.abort {
            return true;
        }
        let now = Instant::now();
        let Some(left) = deadline
            .checked_duration_since(now)
            .filter(|d| !d.is_zero())
        else {
            return false;
        };
        q = shared
            .work
            .wait_timeout(q, left)
            .unwrap_or_else(|e| e.into_inner())
            .0;
    }
}

fn ship_with_retry(
    shared: &Shared,
    sink: &mut dyn ReplSink,
    bytes: &[u8],
) -> std::result::Result<(), String> {
    for attempt in 0..=shared.cfg.max_retries {
        match sink.append(bytes) {
            Ok(()) => {
                metrics::add(Counter::ReplBytesShipped, bytes.len() as u64);
                return Ok(());
            }
            Err(_) if attempt < shared.cfg.max_retries => {
                metrics::incr(Counter::ReplRetries);
                let wait = capped_backoff(
                    shared.cfg.retry_backoff,
                    shared.cfg.retry_backoff_max,
                    attempt,
                );
                if backoff_aborted(shared, wait) {
                    return Err("replicator dropped during retry backoff".to_string());
                }
            }
            Err(e) => return Err(e.to_string()),
        }
    }
    unreachable!("loop returns on success or final error")
}

fn worker(shared: Arc<Shared>, mut sink: Box<dyn ReplSink>) {
    loop {
        let delta = {
            let mut q = lock(&shared.q);
            loop {
                if let Some(d) = q.deque.pop_front() {
                    break Some(d);
                }
                if q.shutdown {
                    break None;
                }
                q = shared.work.wait(q).unwrap_or_else(|e| e.into_inner());
            }
        };
        shared.space.notify_all();
        let Some(delta) = delta else {
            break;
        };
        let epoch = delta.epoch;
        let bytes = encode_delta(&delta);
        match ship_with_retry(&shared, sink.as_mut(), &bytes) {
            Ok(()) => {
                metrics::incr(Counter::ReplDeltasShipped);
                let mut q = lock(&shared.q);
                q.shipped_epoch = epoch;
            }
            Err(msg) => {
                let mut q = lock(&shared.q);
                q.failed = Some(msg);
                q.deque.clear();
                shared.space.notify_all();
            }
        }
    }
    // Shutdown: append the seal trailer if one was requested and the
    // sink is still healthy. The queue is already drained.
    let seal_epoch = {
        let q = lock(&shared.q);
        if q.failed.is_some() {
            None
        } else {
            q.seal_epoch
        }
    };
    if let Some(epoch) = seal_epoch {
        let bytes = encode_seal(epoch);
        if let Err(msg) = ship_with_retry(&shared, sink.as_mut(), &bytes) {
            lock(&shared.q).failed = Some(msg);
        }
    }
}

/// A background replication pipeline for one region: capture at
/// durability points, bounded queue, worker thread shipping encoded
/// records into a [`ReplSink`]. See the module docs.
///
/// Dropping a `Replicator` without calling [`Replicator::seal`] leaves
/// the stream *unsealed* — deliberately indistinguishable from a primary
/// that died mid-ship.
#[derive(Debug)]
pub struct Replicator {
    base: usize,
    shared: Arc<Shared>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Replicator {
    /// Attaches a replicator writing the delta stream to `stream_path`
    /// (created/truncated). The stream header and base snapshot are
    /// written synchronously before this returns.
    ///
    /// # Errors
    ///
    /// [`NvError::ShadowNotEnabled`] without a prior
    /// [`Region::enable_shadow`]; I/O errors creating the stream.
    pub fn attach<P: AsRef<Path>>(
        region: &Region,
        stream_path: P,
        cfg: ReplicatorConfig,
    ) -> Result<Replicator> {
        let file = std::fs::File::create(stream_path)?;
        Self::attach_sink(region, Box::new(FileSink { file }), cfg)
    }

    /// Like [`Replicator::attach`], but shipping into an arbitrary sink.
    ///
    /// # Errors
    ///
    /// As [`Replicator::attach`].
    pub fn attach_sink(
        region: &Region,
        mut sink: Box<dyn ReplSink>,
        cfg: ReplicatorConfig,
    ) -> Result<Replicator> {
        let (source, base_image) = ReplSource::new(region)?;
        let shared = Arc::new(Shared {
            q: Mutex::new(QueueState {
                deque: VecDeque::new(),
                emitted_epoch: 0,
                shipped_epoch: 0,
                shutdown: false,
                abort: false,
                seal_epoch: None,
                failed: None,
            }),
            space: Condvar::new(),
            work: Condvar::new(),
            cfg,
        });
        // The header and base snapshot go out synchronously (with the
        // same retry policy as the worker) so a returned Replicator is
        // guaranteed to sit on a well-formed stream prefix.
        let mut opening = encode_header(source.rid(), source.size() as u64).to_vec();
        opening.extend_from_slice(&encode_base(&base_image));
        ship_with_retry(&shared, sink.as_mut(), &opening)
            .map_err(|msg| NvError::Io(std::io::Error::other(msg)))?;
        let base = region.base();
        {
            let mut sessions = lock(&SESSIONS);
            assert!(
                sessions.iter().all(|s| s.base != base),
                "a Replicator is already attached to this region"
            );
            sessions.push(Arc::new(Session {
                base,
                source: Mutex::new(source),
                shared: shared.clone(),
            }));
            ACTIVE.store(true, Ordering::Relaxed);
        }
        let worker_shared = shared.clone();
        let handle = std::thread::Builder::new()
            .name("nvr-replicator".into())
            .spawn(move || worker(worker_shared, sink))
            .map_err(NvError::Io)?;
        Ok(Replicator {
            base,
            shared,
            handle: Some(handle),
        })
    }

    /// Forces a capture outside a region durability point (testing and
    /// checkpoint-style callers).
    pub fn capture_now(&self) {
        on_durability_point(self.base);
    }

    /// Epochs emitted but not yet shipped (instantaneous replica lag).
    pub fn lag_epochs(&self) -> u64 {
        let q = lock(&self.shared.q);
        q.emitted_epoch.saturating_sub(q.shipped_epoch)
    }

    /// The permanent sink failure, if the worker hit one.
    pub fn failure(&self) -> Option<String> {
        lock(&self.shared.q).failed.clone()
    }

    fn detach_session(&self) {
        let mut sessions = lock(&SESSIONS);
        sessions.retain(|s| s.base != self.base);
        if sessions.is_empty() {
            ACTIVE.store(false, Ordering::Relaxed);
        }
    }

    /// Final capture, queue drain, seal trailer, worker join. Returns the
    /// sealed stream's final epoch.
    ///
    /// # Errors
    ///
    /// [`NvError::Io`] when the sink failed permanently — the stream is
    /// then unsealed.
    pub fn seal(mut self) -> Result<u64> {
        // Ship whatever became durable since the last durability point.
        on_durability_point(self.base);
        let final_epoch = {
            let session = session_for(self.base);
            match &session {
                Some(s) => {
                    let mut src = lock(&s.source);
                    let e = src.last_epoch();
                    src.detach();
                    e
                }
                None => lock(&self.shared.q).emitted_epoch,
            }
        };
        self.detach_session();
        // Ask the worker to drain, append the trailer, and exit; joining
        // it guarantees the seal is on the sink before we return.
        {
            let mut q = lock(&self.shared.q);
            q.seal_epoch = Some(final_epoch);
            q.shutdown = true;
        }
        self.shared.work.notify_all();
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
        if let Some(msg) = self.failure() {
            return Err(NvError::Io(std::io::Error::other(format!(
                "replication sink failed permanently: {msg}"
            ))));
        }
        Ok(final_epoch)
    }
}

impl Drop for Replicator {
    fn drop(&mut self) {
        self.detach_session();
        {
            let mut q = lock(&self.shared.q);
            q.shutdown = true;
            // Dropping abandons the stream, so a retry ladder in progress
            // may give up immediately; `seal` keeps `abort` clear because
            // a sealed stream must exhaust its retries before failing.
            q.abort = true;
        }
        self.shared.work.notify_all();
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::region::Region;

    fn line(i: u32, fill: u8) -> DeltaLine {
        DeltaLine {
            line: i,
            bytes: [fill; SHADOW_LINE],
        }
    }

    fn small_stream() -> (Vec<u8>, Vec<u8>) {
        // A 4-line region: base of zeros, two deltas, seal.
        let size = 4 * SHADOW_LINE;
        let mut expect = vec![0u8; size];
        let mut stream = encode_header(7, size as u64).to_vec();
        stream.extend_from_slice(&encode_base(&vec![0u8; size]));
        let d1 = Delta {
            epoch: 1,
            prev_epoch: 0,
            lines: vec![line(0, 0xaa), line(2, 0xbb)],
        };
        let d2 = Delta {
            epoch: 2,
            prev_epoch: 1,
            lines: vec![line(2, 0xcc), line(3, 0xdd)],
        };
        for d in [&d1, &d2] {
            for l in &d.lines {
                let off = l.line as usize * SHADOW_LINE;
                expect[off..off + SHADOW_LINE].copy_from_slice(&l.bytes);
            }
            stream.extend_from_slice(&encode_delta(d));
        }
        stream.extend_from_slice(&encode_seal(2));
        (stream, expect)
    }

    #[test]
    fn roundtrip_applies_in_epoch_order() {
        let (stream, expect) = small_stream();
        let (meta, records) = decode_stream(&stream).unwrap();
        assert_eq!(meta.rid, 7);
        assert_eq!(records.len(), 4);
        let (image, report) = apply_stream(&stream, true).unwrap();
        assert_eq!(image, expect);
        assert!(report.sealed);
        assert_eq!(report.epoch, 2);
        assert_eq!(report.deltas_applied, 2);
        assert_eq!(report.lines_applied, 4);
        assert!(!report.tail_discarded);
    }

    #[test]
    fn truncation_at_every_boundary_is_a_clean_error() {
        let (stream, _) = small_stream();
        for cut in 0..stream.len() {
            let err = apply_stream(&stream[..cut], true).unwrap_err();
            assert!(
                matches!(
                    err,
                    ReplError::TornStream { .. } | ReplError::Unsealed | ReplError::MissingBase
                ),
                "cut at {cut}: unexpected {err:?}"
            );
        }
    }

    #[test]
    fn torn_tail_without_seal_drops_whole_epoch() {
        let (stream, expect) = small_stream();
        // Strip the seal, then truncate into the last delta record.
        let unsealed = &stream[..stream.len() - RECORD_HEADER_LEN];
        let cut = unsealed.len() - 10;
        let (image, report) = apply_stream(&unsealed[..cut], false).unwrap();
        assert!(report.tail_discarded);
        assert!(!report.sealed);
        assert_eq!(report.epoch, 1, "epoch 2 must be fully absent");
        // Lines from epoch 1 applied; epoch-2 lines untouched.
        assert_eq!(&image[0..SHADOW_LINE], &expect[0..SHADOW_LINE]);
        assert_eq!(image[3 * SHADOW_LINE], 0, "no partial epoch-2 bytes");
    }

    #[test]
    fn corruption_and_gaps_are_rejected() {
        let (stream, _) = small_stream();
        // Flip one payload byte of the first delta: CRC failure.
        let mut rotted = stream.clone();
        let first_delta = STREAM_HEADER_LEN + RECORD_HEADER_LEN + 4 * SHADOW_LINE;
        rotted[first_delta + RECORD_HEADER_LEN + 20] ^= 0x01;
        assert!(matches!(
            apply_stream(&rotted, true).unwrap_err(),
            ReplError::BadCrc { .. }
        ));
        // Drop the first delta entirely: epoch gap.
        let d1_len = {
            let (_, len) = decode_record_at(&stream, first_delta).unwrap();
            len
        };
        let mut gapped = stream[..first_delta].to_vec();
        gapped.extend_from_slice(&stream[first_delta + d1_len..]);
        assert!(matches!(
            apply_stream(&gapped, true).unwrap_err(),
            ReplError::EpochGap {
                expected: 0,
                found: 1
            }
        ));
        // Unsealed stream fails promotion-strict apply.
        let unsealed = &stream[..stream.len() - RECORD_HEADER_LEN];
        assert!(matches!(
            apply_stream(unsealed, true).unwrap_err(),
            ReplError::Unsealed
        ));
        // Bad magic.
        let mut magicless = stream.clone();
        magicless[0] ^= 0xff;
        assert!(matches!(
            apply_stream(&magicless, true).unwrap_err(),
            ReplError::BadMagic
        ));
    }

    #[test]
    fn merge_unions_lines_newer_wins() {
        let mut older = Delta {
            epoch: 3,
            prev_epoch: 2,
            lines: vec![line(1, 0x11), line(5, 0x55)],
        };
        let newer = Delta {
            epoch: 4,
            prev_epoch: 3,
            lines: vec![line(5, 0x66), line(9, 0x99)],
        };
        older.merge(newer);
        assert_eq!(older.epoch, 4);
        assert_eq!(older.prev_epoch, 2);
        let idx: Vec<u32> = older.lines.iter().map(|l| l.line).collect();
        assert_eq!(idx, vec![1, 5, 9]);
        assert_eq!(older.lines[1].bytes[0], 0x66, "newer bytes win");
    }

    #[test]
    fn inspect_reports_records_and_problems() {
        let (stream, _) = small_stream();
        let dump = inspect_stream(&stream);
        assert!(dump.sealed);
        assert!(dump.problem.is_none());
        assert_eq!(dump.last_epoch, 2);
        let kinds: Vec<&str> = dump.records.iter().map(|r| r.kind).collect();
        assert_eq!(kinds, vec!["base", "delta", "delta", "seal"]);
        let torn = inspect_stream(&stream[..stream.len() - 3]);
        assert!(!torn.sealed);
        assert!(torn.problem.as_deref().unwrap().contains("torn"));
        assert_eq!(torn.records.len(), 3);
    }

    #[test]
    fn replicator_ships_region_deltas_end_to_end() {
        let region = Region::create_with_rid(61, 1 << 20).unwrap();
        region.enable_shadow().unwrap();
        let (sink, buf) = MemorySink::new();
        let repl =
            Replicator::attach_sink(&region, Box::new(sink), ReplicatorConfig::default()).unwrap();
        let root = region.alloc(256, 16).unwrap().as_ptr() as usize;
        for round in 0..3u8 {
            unsafe {
                std::ptr::write_bytes(root as *mut u8, 0x40 + round, 256);
            }
            crate::latency::clflush_range(root, 256);
            crate::latency::wbarrier();
            region.sync().unwrap();
        }
        let final_epoch = repl.seal().unwrap();
        assert!(final_epoch >= 3, "three syncs → at least three epochs");
        let stream = lock(&buf).clone();
        let (image, report) = apply_stream(&stream, true).unwrap();
        assert!(report.sealed);
        assert_eq!(image.len(), region.size());
        let off = root - region.base();
        assert_eq!(image[off], 0x42, "last round's bytes reached the replica");
        drop(region);
    }

    #[test]
    fn flaky_sink_is_retried_and_dead_sink_reported() {
        struct Flaky {
            fails_left: u32,
            inner: MemorySink,
        }
        impl ReplSink for Flaky {
            fn append(&mut self, bytes: &[u8]) -> std::io::Result<()> {
                if self.fails_left > 0 {
                    self.fails_left -= 1;
                    return Err(std::io::Error::other("transient"));
                }
                self.inner.append(bytes)
            }
        }
        let region = Region::create_with_rid(62, 1 << 20).unwrap();
        region.enable_shadow().unwrap();
        let buf = Arc::new(Mutex::new(Vec::new()));
        let cfg = ReplicatorConfig {
            retry_backoff: Duration::from_micros(50),
            ..ReplicatorConfig::default()
        };
        let repl = Replicator::attach_sink(
            &region,
            Box::new(Flaky {
                fails_left: 2,
                inner: MemorySink { buf: buf.clone() },
            }),
            cfg,
        )
        .unwrap();
        let p = region.alloc(64, 16).unwrap().as_ptr() as usize;
        unsafe { std::ptr::write_bytes(p as *mut u8, 0x77, 64) };
        crate::latency::clflush_range(p, 64);
        crate::latency::wbarrier();
        region.sync().unwrap();
        repl.seal().unwrap();
        let stream = lock(&buf).clone();
        apply_stream(&stream, true).unwrap();
        drop(region);

        // A sink that never recovers: seal() must surface the failure.
        struct Dead;
        impl ReplSink for Dead {
            fn append(&mut self, _: &[u8]) -> std::io::Result<()> {
                Err(std::io::Error::other("gone"))
            }
        }
        let region = Region::create_with_rid(63, 1 << 20).unwrap();
        region.enable_shadow().unwrap();
        let cfg = ReplicatorConfig {
            max_retries: 1,
            retry_backoff: Duration::from_micros(10),
            ..ReplicatorConfig::default()
        };
        let err = Replicator::attach_sink(&region, Box::new(Dead), cfg);
        // attach itself ships the base snapshot, so the dead sink already
        // fails there — a typed error, not a hang.
        assert!(err.is_err());
        drop(region);
    }

    #[test]
    fn drop_during_retry_backoff_returns_promptly() {
        // A sink that accepts the opening (header + base) append, then
        // fails every subsequent one — pushing the worker into its retry
        // ladder with an hour-scale backoff. Drop must still return fast.
        struct FailAfterFirst {
            appends: usize,
        }
        impl ReplSink for FailAfterFirst {
            fn append(&mut self, _bytes: &[u8]) -> std::io::Result<()> {
                self.appends += 1;
                if self.appends == 1 {
                    Ok(())
                } else {
                    Err(std::io::Error::other("transient"))
                }
            }
        }
        let region = Region::create_with_rid(64, 1 << 20).unwrap();
        region.enable_shadow().unwrap();
        let cfg = ReplicatorConfig {
            max_retries: 8,
            retry_backoff: Duration::from_secs(3600),
            retry_backoff_max: Duration::from_secs(3600),
            ..ReplicatorConfig::default()
        };
        let repl = Replicator::attach_sink(&region, Box::new(FailAfterFirst { appends: 0 }), cfg)
            .expect("opening append succeeds");
        // Dirty a line and capture so the worker has a delta to ship; its
        // first append fails and it starts sleeping out the huge backoff.
        unsafe { std::ptr::write_volatile(region.base() as *mut u8, 0xAB) };
        crate::latency::clflush_range(region.base(), 1);
        repl.capture_now();
        std::thread::sleep(Duration::from_millis(50));
        let start = Instant::now();
        drop(repl);
        assert!(
            start.elapsed() < Duration::from_secs(30),
            "drop blocked {:?} — backoff wait was not cancelled",
            start.elapsed()
        );
        drop(region);
    }

    #[test]
    fn backoff_caps_at_configured_max() {
        let base = Duration::from_millis(10);
        let max = Duration::from_millis(100);
        assert_eq!(capped_backoff(base, max, 0), Duration::from_millis(10));
        assert_eq!(capped_backoff(base, max, 1), Duration::from_millis(20));
        assert_eq!(capped_backoff(base, max, 3), Duration::from_millis(80));
        assert_eq!(capped_backoff(base, max, 4), max);
        assert_eq!(capped_backoff(base, max, 63), max);
    }

    #[test]
    fn coalesce_merges_under_full_queue() {
        // Exercise the queue policy directly: depth 1, slow consumer.
        let shared = Arc::new(Shared {
            q: Mutex::new(QueueState {
                deque: VecDeque::new(),
                emitted_epoch: 0,
                shipped_epoch: 0,
                shutdown: false,
                abort: false,
                seal_epoch: None,
                failed: None,
            }),
            space: Condvar::new(),
            work: Condvar::new(),
            cfg: ReplicatorConfig {
                queue_depth: 1,
                backpressure: Backpressure::Coalesce,
                ..ReplicatorConfig::default()
            },
        });
        enqueue(
            &shared,
            Delta {
                epoch: 1,
                prev_epoch: 0,
                lines: vec![line(0, 1)],
            },
        );
        enqueue(
            &shared,
            Delta {
                epoch: 2,
                prev_epoch: 1,
                lines: vec![line(1, 2)],
            },
        );
        let q = lock(&shared.q);
        assert_eq!(q.deque.len(), 1, "second delta merged, not queued");
        let d = &q.deque[0];
        assert_eq!(d.epoch, 2);
        assert_eq!(d.prev_epoch, 0);
        assert_eq!(d.lines.len(), 2);
    }
}
