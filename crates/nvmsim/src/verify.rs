//! Corruption walk, metadata slots, and salvage for region images.
//!
//! The paper's region metadata (magic/version/RID/root directory/allocator
//! state) is the single point of failure of a persisted image: one rotted
//! cache line in the first kilobyte used to turn the whole region into a
//! brick. This module hardens it in three layers:
//!
//! * **Checksummed A/B metadata slots.** Every durability point snapshots
//!   the header (identity words, root directory, allocator state — the
//!   bytes up to [`RegionHeader::snapshot_len`]) into the *inactive* of two
//!   1 KiB slots, appends a monotonically increasing sequence number, and
//!   seals both under a CRC-64. A torn slot write leaves the other slot
//!   intact; the newest slot that checks out is the *active* one.
//! * **[`verify_bytes`] — the corruption walk.** Checks the primary header
//!   (boot words, root-directory decode and bounds, allocator free-list
//!   sanity), both slots, and — when a `pstore` store is present — every
//!   undo-log entry checksum. Purely diagnostic, never panics, works on a
//!   mapped region and on a plain file alike.
//! * **`salvage_in_place` — repair** (crate-internal, driven by
//!   [`Region::open_file_salvage`](crate::Region::open_file_salvage)).
//!   Restores a damaged primary from
//!   the active slot, pins the header geometry to the mapped length,
//!   quarantines root entries that still fail to verify, and freezes an
//!   unverifiable allocator so further allocation fails cleanly instead of
//!   double-serving memory.
//!
//! All byte offsets here mirror the `#[repr(C)]` layout of
//! [`RegionHeader`]; a compile-time assertion in `region.rs` plus the
//! layout tests in `inspect.rs` keep them honest.

use crate::alloc::{CLASS_SIZES, NUM_CLASSES};
use crate::crc::{crc64, crc64_update};
use crate::error::{NvError, Result};
use crate::llalloc;
use crate::region::{
    RegionHeader, HEADER_VERSION, MAX_ROOTS, META_SLOT_COUNT, META_SLOT_SIZE, REGION_MAGIC,
    ROOT_NAME_CAP,
};
use std::fmt;
use std::path::Path;

// Byte offsets of the `#[repr(C)]` RegionHeader fields.
const OFF_MAGIC: usize = 0;
const OFF_VERSION: usize = 8;
const OFF_RID: usize = 12;
const OFF_SIZE: usize = 16;
const OFF_FLAGS: usize = 24;
const OFF_CAPACITY: usize = 40;
const OFF_ROOTS: usize = 48;
const ROOT_ENTRY_SIZE: usize = ROOT_NAME_CAP + 1 + 16;
const OFF_ALLOC: usize = OFF_ROOTS + MAX_ROOTS * ROOT_ENTRY_SIZE;
/// `AllocHeader`: bump, end, free_heads[NUM_CLASSES], large_head, counters.
const OFF_ALLOC_BUMP: usize = OFF_ALLOC;
const OFF_ALLOC_END: usize = OFF_ALLOC + 8;
const OFF_ALLOC_LISTS: usize = OFF_ALLOC + 16;
const ALLOC_LISTS_LEN: usize = (NUM_CLASSES + 1) * 8;
/// The `ll_dir` word (bitmap-page directory head) trails the free lists
/// and the four stat counters; see `AllocHeader` in `alloc.rs`.
const OFF_ALLOC_LL_DIR: usize = OFF_ALLOC_LISTS + ALLOC_LISTS_LEN + 4 * 8;

/// The `pstore` store magic ("PSTOREV1"); duplicated here because the
/// dependency points the other way (`pstore` builds on `nvmsim`). The
/// undo-log walk below and `pstore::log` must agree on the entry format.
const PSTORE_MAGIC: u64 = u64::from_le_bytes(*b"PSTOREV1");
/// Region root under which a `pstore` store keeps its metadata.
const PSTORE_META_ROOT: &[u8] = b"pstore.meta";
/// Undo-log area header (`used` word + padding).
const LOG_HEADER_SIZE: u64 = 16;
/// Undo-log entry header: `{ data_off, len, crc64, reserved }`.
const LOG_ENTRY_HEADER_SIZE: u64 = 32;

fn read_u64(bytes: &[u8], off: usize) -> u64 {
    u64::from_le_bytes(bytes[off..off + 8].try_into().unwrap())
}

fn read_u32(bytes: &[u8], off: usize) -> u32 {
    u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap())
}

fn write_u64(bytes: &mut [u8], off: usize, v: u64) {
    bytes[off..off + 8].copy_from_slice(&v.to_le_bytes());
}

fn slot_off(i: usize) -> usize {
    RegionHeader::meta_slots_off() as usize + i * META_SLOT_SIZE
}

fn slot_name(i: usize) -> char {
    (b'A' + i as u8) as char
}

/// CRC-64 sealing a slot: covers the snapshot payload and the sequence
/// number, so neither can rot (or tear) undetected.
fn slot_crc(payload: &[u8], seq: u64) -> u64 {
    let state = crc64_update(!0, payload);
    crc64_update(state, &seq.to_le_bytes()) ^ !0
}

/// The header snapshot with its flags word zeroed: the dirty bit flips
/// outside any slot update, so snapshots are compared and checksummed
/// flags-blind.
fn normalized_primary(bytes: &[u8]) -> Vec<u8> {
    let mut snap = bytes[..RegionHeader::snapshot_len()].to_vec();
    snap[OFF_FLAGS..OFF_FLAGS + 8].fill(0);
    snap
}

/// Integrity state of one metadata slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotState {
    /// All-zero slot: never written (only slot B of a never-synced image).
    Empty,
    /// Sequence number nonzero and CRC-64 checks out.
    Valid,
    /// Anything else — torn write or bit rot.
    Corrupt,
}

/// What the corruption walk found in one metadata slot.
#[derive(Debug, Clone, Copy)]
pub struct SlotStatus {
    /// Integrity of the slot.
    pub state: SlotState,
    /// The slot's sequence number (0 when empty).
    pub seq: u64,
    /// Whether the slot payload equals the (flags-normalized) primary
    /// header. Meaningful only for valid slots.
    pub matches_primary: bool,
}

/// A root-directory entry that failed to verify.
#[derive(Debug, Clone)]
pub struct RootIssue {
    /// Index of the entry in the directory.
    pub index: usize,
    /// Best-effort (lossy) rendering of the name bytes.
    pub name: String,
    /// Why the entry was rejected.
    pub reason: String,
}

/// Result of walking a `pstore` undo log's entry checksums.
#[derive(Debug, Clone, Copy)]
pub struct LogCheck {
    /// Region offset of the log area.
    pub log_off: u64,
    /// Capacity of the log area in bytes.
    pub log_cap: u64,
    /// The log's `used` word (bytes of entries the commit point covers).
    pub used: u64,
    /// Entries whose CRC-64 checks out.
    pub entries_ok: u64,
    /// Entries with a structurally plausible header but a failing CRC.
    pub entries_bad: u64,
    /// Whether the scan ended early on an implausible entry header (span
    /// or target out of bounds) — entries past that point are unreadable.
    pub truncated: bool,
}

/// Structured result of the corruption walk over one region image.
///
/// Produced by [`verify_bytes`] / [`verify_file`] / `Region::verify`, and
/// (with `repairs` and `quarantined_roots` filled in) by
/// `Region::open_file_salvage`.
#[derive(Debug, Clone)]
pub struct VerifyReport {
    /// Length of the image in bytes.
    pub file_len: u64,
    /// The region ID the boot block claims (reported even when damaged).
    pub rid: Option<u32>,
    /// Whether the image was cleanly closed (dirty flag clear).
    pub clean: bool,
    /// Boot-block problems: magic, version, declared size vs file length.
    pub boot_errors: Vec<String>,
    /// Allocator-metadata problems: bump/end geometry, free-list links.
    pub alloc_errors: Vec<String>,
    /// Bitmap-allocator problems: page-chain structure, descriptor
    /// geometry, and (on clean images) page CRCs and free counters.
    /// Empty for legacy images without a bitmap directory. A damaged
    /// bitmap does not make the primary unusable — `Region::open`
    /// degrades to the legacy allocator — so these count against
    /// [`healthy`](Self::healthy) but not [`primary_ok`](Self::primary_ok).
    pub llalloc_errors: Vec<String>,
    /// Root-directory entries that failed to decode or point out of
    /// bounds.
    pub root_errors: Vec<RootIssue>,
    /// Per-slot integrity (length [`META_SLOT_COUNT`]).
    pub slots: Vec<SlotStatus>,
    /// Index of the newest valid slot, if any.
    pub active_slot: Option<usize>,
    /// Whether both slots are valid and carry identical payloads (the
    /// signature of a clean close, which converges them).
    pub slots_agree: bool,
    /// Whether the active slot's payload equals the normalized primary
    /// header (`None` when no slot is valid).
    pub primary_matches_active: Option<bool>,
    /// Undo-log entry checksums, when a `pstore` store is present and its
    /// metadata is reachable.
    pub undo_log: Option<LogCheck>,
    /// Repairs applied (salvage only; empty for the diagnostic walk).
    pub repairs: Vec<String>,
    /// Root entries dropped as unverifiable (salvage only).
    pub quarantined_roots: Vec<String>,
}

impl VerifyReport {
    fn new(file_len: u64) -> VerifyReport {
        VerifyReport {
            file_len,
            rid: None,
            clean: false,
            boot_errors: Vec::new(),
            alloc_errors: Vec::new(),
            llalloc_errors: Vec::new(),
            root_errors: Vec::new(),
            slots: Vec::new(),
            active_slot: None,
            slots_agree: false,
            primary_matches_active: None,
            undo_log: None,
            repairs: Vec::new(),
            quarantined_roots: Vec::new(),
        }
    }

    /// Whether the boot block (magic, version, geometry) checks out.
    pub fn boot_ok(&self) -> bool {
        self.boot_errors.is_empty()
    }

    /// Whether the allocator metadata checks out.
    pub fn alloc_ok(&self) -> bool {
        self.alloc_errors.is_empty()
    }

    /// Whether the primary header as a whole (boot block, root directory,
    /// allocator) is structurally valid — the region is usable without
    /// slot assistance.
    pub fn primary_ok(&self) -> bool {
        self.boot_ok() && self.alloc_ok() && self.root_errors.is_empty()
    }

    /// Whether the image shows no damage at all: valid primary, no
    /// corrupt slot, an active slot present, a clean image's primary in
    /// agreement with it, and no bad or unreadable log entries.
    pub fn healthy(&self) -> bool {
        self.primary_ok()
            && self.llalloc_errors.is_empty()
            && self.slots.iter().all(|s| s.state != SlotState::Corrupt)
            && self.active_slot.is_some()
            && (!self.clean || self.primary_matches_active == Some(true))
            && self
                .undo_log
                .is_none_or(|l| l.entries_bad == 0 && !l.truncated)
            && self.quarantined_roots.is_empty()
    }

    /// One-line summary of everything wrong, for error payloads.
    pub fn damage_summary(&self) -> String {
        let mut parts: Vec<String> = Vec::new();
        parts.extend(self.boot_errors.iter().cloned());
        parts.extend(self.alloc_errors.iter().cloned());
        parts.extend(self.llalloc_errors.iter().cloned());
        for r in &self.root_errors {
            parts.push(format!("root {} ({:?}): {}", r.index, r.name, r.reason));
        }
        for (i, s) in self.slots.iter().enumerate() {
            if s.state == SlotState::Corrupt {
                parts.push(format!("metadata slot {} corrupt", slot_name(i)));
            }
        }
        if let Some(l) = self.undo_log {
            if l.entries_bad > 0 {
                parts.push(format!("{} undo-log entries fail their CRC", l.entries_bad));
            }
            if l.truncated {
                parts.push("undo-log scan ended on an implausible entry".to_string());
            }
        }
        if parts.is_empty() {
            "no damage".to_string()
        } else {
            parts.join("; ")
        }
    }
}

impl fmt::Display for VerifyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "image:      {} bytes, rid {}, {}",
            self.file_len,
            self.rid.map_or("?".to_string(), |r| r.to_string()),
            if self.clean { "clean" } else { "dirty" }
        )?;
        if self.primary_ok() {
            writeln!(f, "primary:    ok (boot, root directory, allocator)")?;
        } else {
            writeln!(f, "primary:    DAMAGED")?;
            for e in &self.boot_errors {
                writeln!(f, "  boot:     {e}")?;
            }
            for e in &self.alloc_errors {
                writeln!(f, "  alloc:    {e}")?;
            }
            for r in &self.root_errors {
                writeln!(f, "  root {:2}:  {:?}: {}", r.index, r.name, r.reason)?;
            }
        }
        if self.llalloc_errors.is_empty() {
            writeln!(f, "bitmap:     ok (or legacy image)")?;
        } else {
            writeln!(f, "bitmap:     DAMAGED")?;
            for e in &self.llalloc_errors {
                writeln!(f, "  llalloc:  {e}")?;
            }
        }
        for (i, s) in self.slots.iter().enumerate() {
            let state = match s.state {
                SlotState::Empty => "empty".to_string(),
                SlotState::Corrupt => "CORRUPT".to_string(),
                SlotState::Valid => format!(
                    "valid, seq {}{}{}",
                    s.seq,
                    if self.active_slot == Some(i) {
                        ", active"
                    } else {
                        ""
                    },
                    if s.matches_primary {
                        ", matches primary"
                    } else {
                        ""
                    }
                ),
            };
            writeln!(f, "slot {}:     {state}", slot_name(i))?;
        }
        match self.undo_log {
            Some(l) => writeln!(
                f,
                "undo log:   {} bytes used, {} entries ok, {} bad{}",
                l.used,
                l.entries_ok,
                l.entries_bad,
                if l.truncated { ", scan truncated" } else { "" }
            )?,
            None => writeln!(f, "undo log:   none (no pstore store reachable)")?,
        }
        for r in &self.repairs {
            writeln!(f, "repaired:   {r}")?;
        }
        for q in &self.quarantined_roots {
            writeln!(f, "quarantined: {q}")?;
        }
        write!(
            f,
            "verdict:    {}",
            if self.healthy() {
                "healthy"
            } else if self.primary_ok() || self.active_slot.is_some() {
                "damaged (recoverable)"
            } else {
                "damaged (unrecoverable)"
            }
        )
    }
}

fn parse_slot(bytes: &[u8], i: usize) -> (SlotState, u64) {
    let snap = RegionHeader::snapshot_len();
    let off = slot_off(i);
    let area = &bytes[off..off + snap + 16];
    let seq = read_u64(area, snap);
    let crc = read_u64(area, snap + 8);
    if seq == 0 && crc == 0 && area[..snap].iter().all(|&b| b == 0) {
        return (SlotState::Empty, 0);
    }
    if seq != 0 && slot_crc(&area[..snap], seq) == crc {
        (SlotState::Valid, seq)
    } else {
        (SlotState::Corrupt, seq)
    }
}

/// Byte-level root-directory walk shared by verify and salvage: calls
/// `issue` for every used entry that fails to decode or points outside
/// the data area.
fn walk_roots(bytes: &[u8], mut issue: impl FnMut(RootIssue)) {
    let data_start = RegionHeader::data_start();
    let file_len = bytes.len() as u64;
    for i in 0..MAX_ROOTS {
        let off = OFF_ROOTS + i * ROOT_ENTRY_SIZE;
        let name = &bytes[off..off + ROOT_NAME_CAP + 1];
        if name[0] == 0 {
            continue;
        }
        let nul = name.iter().position(|&b| b == 0);
        let label = match nul {
            Some(n) => String::from_utf8_lossy(&name[..n]).into_owned(),
            None => format!("{}…", String::from_utf8_lossy(&name[..8])),
        };
        let reason = match nul {
            None => Some("name is not NUL-terminated within its field".to_string()),
            Some(n) if std::str::from_utf8(&name[..n]).is_err() => {
                Some("name is not valid UTF-8".to_string())
            }
            Some(_) => {
                let target = read_u64(bytes, off + ROOT_NAME_CAP + 1);
                if target < data_start || target >= file_len {
                    Some(format!(
                        "offset {target} outside the data area [{data_start}, {file_len})"
                    ))
                } else {
                    None
                }
            }
        };
        if let Some(reason) = reason {
            issue(RootIssue {
                index: i,
                name: label,
                reason,
            });
        }
    }
}

/// Structural allocator check. The free-list walk dereferences offsets,
/// so it needs an 8-aligned base and an `end` that does not exceed the
/// buffer — both are established here before any pointer is chased.
fn check_alloc(bytes: &[u8], errors: &mut Vec<String>) {
    let data_start = RegionHeader::data_start();
    let end = read_u64(bytes, OFF_ALLOC_END);
    if end != bytes.len() as u64 {
        errors.push(format!(
            "allocator end {end} != file length {}",
            bytes.len()
        ));
        // An out-of-range end makes the free-list bounds predicate
        // meaningless (links up to `end` would be chased off the buffer).
        return;
    }
    let run = |base: usize| {
        // SAFETY: base is 8-aligned, the buffer is `end` bytes long, and
        // `check` only dereferences offsets it has bounds-checked against
        // `[data_start, end)`.
        unsafe {
            (*(base as *const RegionHeader))
                .alloc
                .check(base, data_start)
        }
    };
    let res = if (bytes.as_ptr() as usize).is_multiple_of(std::mem::align_of::<RegionHeader>()) {
        run(bytes.as_ptr() as usize)
    } else {
        // A plain `fs::read` buffer has no alignment guarantee: rehost the
        // image in an 8-aligned scratch buffer for the walk.
        let mut scratch: Vec<u64> = vec![0; bytes.len().div_ceil(8)];
        // SAFETY: scratch holds at least bytes.len() bytes.
        unsafe {
            std::ptr::copy_nonoverlapping(
                bytes.as_ptr(),
                scratch.as_mut_ptr() as *mut u8,
                bytes.len(),
            );
        }
        run(scratch.as_ptr() as usize)
    };
    if let Err(e) = res {
        errors.push(e.to_string());
    }
}

/// Corruption walk over the two-level bitmap allocator's on-media pages.
///
/// Structural predicates (chain bounds, page magic, descriptor
/// class/capacity/span/padding bits) hold on every image, crashed or
/// clean — `llalloc` flushes each bitmap word before an allocation
/// returns, so a crash can only lose whole operations, never tear a
/// page's structure. The page CRC-64 and the `free == capacity -
/// popcount(bitmap)` cross-check are sealed only by a clean close, so
/// they run only when the dirty flag is clear.
///
/// Never dereferences anything: the walk is bounds-checked byte reads,
/// mirroring the layout in `llalloc.rs`.
fn check_llalloc(bytes: &[u8], clean: bool, errors: &mut Vec<String>) {
    if bytes.len() < OFF_ALLOC_LL_DIR + 8 {
        return;
    }
    let ll_dir = read_u64(bytes, OFF_ALLOC_LL_DIR);
    if ll_dir == 0 {
        return; // Legacy image: no bitmap directory, nothing to check.
    }
    let max_pages = bytes.len() / llalloc::LL_PAGE_SIZE + 1;
    let mut pages = 0usize;
    let mut page_off = ll_dir;
    while page_off != 0 {
        if pages >= max_pages {
            errors.push("bitmap page chain cycle".to_string());
            return;
        }
        if !page_off.is_multiple_of(64) || page_off as usize + llalloc::LL_PAGE_SIZE > bytes.len() {
            errors.push(format!("bitmap page offset {page_off:#x} out of bounds"));
            return;
        }
        let p = page_off as usize;
        if read_u64(bytes, p + llalloc::PAGE_MAGIC) != llalloc::LL_PAGE_MAGIC {
            errors.push(format!("bitmap page at {page_off:#x} has a bad magic"));
            return;
        }
        let count = read_u64(bytes, p + llalloc::PAGE_COUNT);
        if count > llalloc::SUBTREES_PER_PAGE as u64 {
            errors.push(format!(
                "bitmap page at {page_off:#x} claims {count} descriptors"
            ));
            return;
        }
        if clean {
            // A clean close seals every page under a CRC-64 computed
            // with the CRC field itself zeroed.
            let mut page = bytes[p..p + llalloc::LL_PAGE_SIZE].to_vec();
            let stored = read_u64(&page, llalloc::PAGE_CRC);
            write_u64(&mut page, llalloc::PAGE_CRC, 0);
            if crc64(&page) != stored {
                errors.push(format!(
                    "bitmap page at {page_off:#x} fails its CRC (clean image)"
                ));
            }
        }
        for slot in 0..count as usize {
            let d = p + llalloc::DESC_SIZE + slot * llalloc::DESC_SIZE;
            let meta = read_u64(bytes, d + llalloc::D_META);
            let class = (meta & 0xff) as usize;
            let cap = ((meta >> 8) & 0xff) as u32;
            if class >= NUM_CLASSES || cap == 0 || cap as usize > llalloc::BLOCKS_PER_SUBTREE {
                errors.push(format!(
                    "bitmap descriptor {slot}@{page_off:#x}: bad class/capacity"
                ));
                continue;
            }
            let base = read_u64(bytes, d + llalloc::D_BASE);
            let span = cap as u64 * CLASS_SIZES[class] as u64;
            if !base.is_multiple_of(llalloc::GRANULE)
                || base
                    .checked_add(span)
                    .is_none_or(|e| e > bytes.len() as u64)
            {
                errors.push(format!(
                    "bitmap descriptor {slot}@{page_off:#x}: span out of bounds"
                ));
                continue;
            }
            let bm = read_u64(bytes, d + llalloc::D_BITMAP);
            let mask = if cap >= 64 { !0u64 } else { (1u64 << cap) - 1 };
            if bm & !mask != !mask {
                errors.push(format!(
                    "bitmap descriptor {slot}@{page_off:#x}: padding bits corrupt"
                ));
                continue;
            }
            if clean {
                let free = read_u64(bytes, d + llalloc::D_FREE);
                let allocated = (bm & mask).count_ones() as u64;
                if free != cap as u64 - allocated {
                    errors.push(format!(
                        "bitmap descriptor {slot}@{page_off:#x}: free counter {free} != \
                         {} on a clean image",
                        cap as u64 - allocated
                    ));
                }
            }
        }
        page_off = read_u64(bytes, p + llalloc::PAGE_NEXT);
        pages += 1;
    }
}

/// Walks the `pstore` undo log's entry checksums, when a store is
/// present. Returns `None` when no intact `pstore.meta` root leads to a
/// plausible store (including when the region simply has no store).
fn check_undo_log(bytes: &[u8]) -> Option<LogCheck> {
    let data_start = RegionHeader::data_start();
    let file_len = bytes.len() as u64;
    let mut meta_off = None;
    for i in 0..MAX_ROOTS {
        let off = OFF_ROOTS + i * ROOT_ENTRY_SIZE;
        let name = &bytes[off..off + ROOT_NAME_CAP + 1];
        if let Some(n) = name.iter().position(|&b| b == 0) {
            if &name[..n] == PSTORE_META_ROOT {
                meta_off = Some(read_u64(bytes, off + ROOT_NAME_CAP + 1));
            }
        }
    }
    let meta = meta_off?;
    if meta < data_start || meta.checked_add(40)? > file_len {
        return None;
    }
    let meta = meta as usize;
    if read_u64(bytes, meta) != PSTORE_MAGIC {
        return None;
    }
    let log_off = read_u64(bytes, meta + 24);
    let log_cap = read_u64(bytes, meta + 32);
    let mut check = LogCheck {
        log_off,
        log_cap,
        used: 0,
        entries_ok: 0,
        entries_bad: 0,
        truncated: false,
    };
    if log_off < data_start
        || log_cap < LOG_HEADER_SIZE
        || log_off
            .checked_add(log_cap)
            .is_none_or(|end| end > file_len)
    {
        check.truncated = true;
        return Some(check);
    }
    let used = read_u64(bytes, log_off as usize);
    check.used = used;
    if used > log_cap - LOG_HEADER_SIZE {
        check.truncated = true;
        return Some(check);
    }
    let entries = log_off + LOG_HEADER_SIZE;
    let mut pos = 0u64;
    while pos + LOG_ENTRY_HEADER_SIZE <= used {
        let ent = (entries + pos) as usize;
        let data_off = read_u64(bytes, ent);
        let len = read_u64(bytes, ent + 8);
        let crc = read_u64(bytes, ent + 16);
        let span = len
            .checked_add(15)
            .map(|v| v & !15)
            .and_then(|v| v.checked_add(LOG_ENTRY_HEADER_SIZE));
        let intact = span.is_some_and(|s| {
            pos.checked_add(s).is_some_and(|end| end <= used)
                && data_off.checked_add(len).is_some_and(|end| end <= file_len)
        });
        if !intact {
            check.truncated = true;
            break;
        }
        let mut state = crc64_update(!0, &data_off.to_le_bytes());
        state = crc64_update(state, &len.to_le_bytes());
        state = crc64_update(
            state,
            &bytes[ent + LOG_ENTRY_HEADER_SIZE as usize
                ..ent + LOG_ENTRY_HEADER_SIZE as usize + len as usize],
        );
        if state ^ !0 == crc {
            check.entries_ok += 1;
        } else {
            check.entries_bad += 1;
        }
        pos += span.unwrap();
    }
    Some(check)
}

/// Runs the full corruption walk over a region image. Never panics and
/// never modifies `bytes`; every problem lands in the returned report.
pub fn verify_bytes(bytes: &[u8]) -> VerifyReport {
    let mut report = VerifyReport::new(bytes.len() as u64);
    let min_len = RegionHeader::data_start() as usize + 64;
    if bytes.len() < min_len {
        report.boot_errors.push(format!(
            "file of {} bytes is too small for a v{HEADER_VERSION} region (minimum {min_len})",
            bytes.len()
        ));
        return report;
    }
    let magic = read_u64(bytes, OFF_MAGIC);
    if magic != REGION_MAGIC {
        report.boot_errors.push(format!("bad magic {magic:#x}"));
    }
    let version = read_u32(bytes, OFF_VERSION);
    if version != HEADER_VERSION {
        report
            .boot_errors
            .push(format!("unsupported version {version}"));
    }
    let size = read_u64(bytes, OFF_SIZE);
    if size != bytes.len() as u64 {
        report
            .boot_errors
            .push(format!("header size {size} != file length {}", bytes.len()));
    }
    let capacity = read_u64(bytes, OFF_CAPACITY);
    if capacity < size {
        report
            .boot_errors
            .push(format!("header capacity {capacity} below its size {size}"));
    }
    report.rid = Some(read_u32(bytes, OFF_RID));
    report.clean = read_u64(bytes, OFF_FLAGS) & 1 == 0;
    walk_roots(bytes, |issue| report.root_errors.push(issue));
    check_alloc(bytes, &mut report.alloc_errors);
    check_llalloc(bytes, report.clean, &mut report.llalloc_errors);

    let primary = normalized_primary(bytes);
    let snap = RegionHeader::snapshot_len();
    let mut best: Option<(usize, u64)> = None;
    for i in 0..META_SLOT_COUNT {
        let (state, seq) = parse_slot(bytes, i);
        let off = slot_off(i);
        let matches_primary = state == SlotState::Valid && bytes[off..off + snap] == primary[..];
        report.slots.push(SlotStatus {
            state,
            seq,
            matches_primary,
        });
        if state == SlotState::Valid && best.is_none_or(|(_, s)| seq > s) {
            best = Some((i, seq));
        }
    }
    report.active_slot = best.map(|(i, _)| i);
    report.slots_agree =
        report.slots.iter().all(|s| s.state == SlotState::Valid) && META_SLOT_COUNT >= 2 && {
            let a = slot_off(0);
            let b = slot_off(1);
            bytes[a..a + snap] == bytes[b..b + snap]
        };
    report.primary_matches_active = report.active_slot.map(|i| report.slots[i].matches_primary);
    report.undo_log = check_undo_log(bytes);
    report
}

/// [`verify_bytes`] over a file on disk, without mapping it.
///
/// # Errors
///
/// I/O errors reading the file. Damage is *not* an error — it is the
/// report's content.
pub fn verify_file<P: AsRef<Path>>(path: P) -> Result<VerifyReport> {
    let data = std::fs::read(path)?;
    Ok(verify_bytes(&data))
}

/// The capacity word claimed by the newest valid metadata slot, for an
/// open path whose primary capacity word is implausible. `bytes` must
/// hold at least the full slot area (`RegionHeader::data_start()` bytes).
pub(crate) fn slot_capacity(bytes: &[u8]) -> Option<u64> {
    let mut best: Option<(u64, u64)> = None;
    for i in 0..META_SLOT_COUNT {
        if let (SlotState::Valid, seq) = parse_slot(bytes, i) {
            let cap = read_u64(bytes, slot_off(i) + OFF_CAPACITY);
            if best.is_none_or(|(s, _)| seq > s) {
                best = Some((seq, cap));
            }
        }
    }
    best.map(|(_, c)| c)
}

/// Composes the current header snapshot into the *inactive* metadata slot
/// with the next sequence number and its CRC-64, returning the byte range
/// written (`(offset, len)`) so the caller can flush and fence it. The
/// write order within the slot does not matter for correctness: the slot
/// only becomes active once its CRC seals seq+payload, so any torn state
/// parses as `Corrupt` and the previously active slot still wins.
///
/// Returns `None` when `bytes` cannot hold the slot area.
pub(crate) fn stage_next_slot(bytes: &mut [u8]) -> Option<(usize, usize)> {
    let snap = RegionHeader::snapshot_len();
    if bytes.len() < RegionHeader::data_start() as usize {
        return None;
    }
    let mut best: Option<(usize, u64)> = None;
    for i in 0..META_SLOT_COUNT {
        if let (SlotState::Valid, seq) = parse_slot(bytes, i) {
            if best.is_none_or(|(_, s)| seq > s) {
                best = Some((i, seq));
            }
        }
    }
    let (target, seq) = match best {
        Some((i, s)) => ((i + 1) % META_SLOT_COUNT, s + 1),
        None => (0, 1),
    };
    let off = slot_off(target);
    bytes.copy_within(0..snap, off);
    bytes[off + OFF_FLAGS..off + OFF_FLAGS + 8].fill(0);
    let seq_bytes = seq.to_le_bytes();
    bytes[off + snap..off + snap + 8].copy_from_slice(&seq_bytes);
    let crc = slot_crc(&bytes[off..off + snap], seq);
    bytes[off + snap + 8..off + snap + 16].copy_from_slice(&crc.to_le_bytes());
    Some((off, snap + 16))
}

/// Overwrites the primary header snapshot with slot `slot`'s payload.
/// The caller re-verifies afterwards; the restored flags word is the
/// normalized (zero) one, so the image reads as clean until the caller
/// marks it otherwise.
pub(crate) fn restore_slot(bytes: &mut [u8], slot: usize) {
    let snap = RegionHeader::snapshot_len();
    let off = slot_off(slot);
    bytes.copy_within(off..off + snap, 0);
}

/// Repairs a damaged image in place (in the caller's private mapping):
/// restore from the active slot, pin the header geometry to the mapped
/// length, quarantine unverifiable roots, freeze an unverifiable
/// allocator, and mark the image dirty so recovery layers run.
///
/// # Errors
///
/// [`NvError::BadImage`] when the boot block is damaged and no valid slot
/// exists, or when the primary still fails verification after repair.
pub(crate) fn salvage_in_place(bytes: &mut [u8]) -> Result<VerifyReport> {
    let mut repairs: Vec<String> = Vec::new();
    let first = verify_bytes(bytes);
    if !first.primary_ok() {
        if let Some(s) = first.active_slot {
            restore_slot(bytes, s);
            repairs.push(format!(
                "restored primary metadata from slot {} (seq {})",
                slot_name(s),
                first.slots[s].seq
            ));
        } else if !first.boot_ok() {
            return Err(NvError::BadImage(format!(
                "unsalvageable image (boot block damaged, no valid metadata slot): {}",
                first.damage_summary()
            )));
        }
        // Root-directory or allocator damage without a usable slot falls
        // through to quarantine / freeze below.
    }
    // The mapped length is the one geometry fact that cannot lie; a
    // size-lying (or truncated) header is pinned to it.
    if read_u64(bytes, OFF_SIZE) != bytes.len() as u64 {
        write_u64(bytes, OFF_SIZE, bytes.len() as u64);
        repairs.push(format!(
            "header size pinned to mapped length {}",
            bytes.len()
        ));
    }
    if read_u64(bytes, OFF_CAPACITY) < bytes.len() as u64 {
        write_u64(bytes, OFF_CAPACITY, bytes.len() as u64);
        repairs.push(format!(
            "header capacity pinned to mapped length {}",
            bytes.len()
        ));
    }
    let mid = verify_bytes(bytes);
    let mut quarantined = Vec::new();
    for issue in &mid.root_errors {
        let off = OFF_ROOTS + issue.index * ROOT_ENTRY_SIZE;
        bytes[off..off + ROOT_ENTRY_SIZE].fill(0);
        quarantined.push(format!(
            "root {} ({:?}): {}",
            issue.index, issue.name, issue.reason
        ));
    }
    if !quarantined.is_empty() {
        repairs.push(format!(
            "quarantined {} unverifiable root directory entr{}",
            quarantined.len(),
            if quarantined.len() == 1 { "y" } else { "ies" }
        ));
    }
    if !mid.alloc_ok() {
        // Freeze: no free blocks, bump pinned to the end. Every further
        // allocation fails with OutOfMemory instead of double-serving
        // memory through a rotted free-list link.
        let end = bytes.len() as u64;
        write_u64(bytes, OFF_ALLOC_BUMP, end);
        write_u64(bytes, OFF_ALLOC_END, end);
        bytes[OFF_ALLOC_LISTS..OFF_ALLOC_LISTS + ALLOC_LISTS_LEN].fill(0);
        repairs.push(
            "allocator metadata unverifiable: allocation frozen (free lists cleared, \
             bump pinned to end)"
                .to_string(),
        );
    }
    if !mid.llalloc_errors.is_empty() {
        // Detaching the directory is safe: the carved spans stay behind
        // `bump`, so the legacy allocator can never re-serve them, and
        // live blocks freed later are simply recycled through the legacy
        // free lists. Allocation continues without the bitmap fast path.
        write_u64(bytes, OFF_ALLOC_LL_DIR, 0);
        repairs.push(format!(
            "bitmap allocator unverifiable ({}): directory detached, region \
             falls back to the legacy allocator",
            mid.llalloc_errors.join("; ")
        ));
    }
    // A salvaged image must run recovery layers regardless of what the
    // restored flags claim.
    bytes[OFF_FLAGS] |= 1;
    let mut last = verify_bytes(bytes);
    if !last.primary_ok() {
        return Err(NvError::BadImage(format!(
            "unsalvageable image (primary still invalid after repair): {}",
            last.damage_summary()
        )));
    }
    last.repairs = repairs;
    last.quarantined_roots = quarantined;
    Ok(last)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::region::Region;
    use std::path::PathBuf;

    fn tmpfile(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "nvmsim-verify-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&d).unwrap();
        d.join(name)
    }

    fn build_image(name: &str) -> (PathBuf, Vec<u8>) {
        let path = tmpfile(name);
        let r = Region::create_file(&path, 1 << 20).unwrap();
        let p = r.alloc(64, 8).unwrap();
        r.set_root("head", p.as_ptr() as usize).unwrap();
        r.close().unwrap();
        let bytes = std::fs::read(&path).unwrap();
        (path, bytes)
    }

    #[test]
    fn clean_image_verifies_healthy() {
        let (path, bytes) = build_image("healthy.nvr");
        let rep = verify_bytes(&bytes);
        assert!(rep.primary_ok(), "{}", rep.damage_summary());
        assert!(rep.healthy(), "{rep}");
        assert!(rep.clean);
        assert!(rep.slots_agree, "clean close converges both slots");
        assert_eq!(rep.primary_matches_active, Some(true));
        assert_eq!(rep.slots.len(), META_SLOT_COUNT);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn stage_next_slot_alternates_and_bumps_seq() {
        let (path, mut bytes) = build_image("stage.nvr");
        let before: Vec<(SlotState, u64)> = (0..META_SLOT_COUNT)
            .map(|i| parse_slot(&bytes, i))
            .collect();
        let best = before.iter().map(|&(_, s)| s).max().unwrap();
        let (off1, len) = stage_next_slot(&mut bytes).unwrap();
        assert_eq!(len, RegionHeader::snapshot_len() + 16);
        let (off2, _) = stage_next_slot(&mut bytes).unwrap();
        assert_ne!(off1, off2, "consecutive stages alternate slots");
        let after: Vec<(SlotState, u64)> = (0..META_SLOT_COUNT)
            .map(|i| parse_slot(&bytes, i))
            .collect();
        assert!(after.iter().all(|&(st, _)| st == SlotState::Valid));
        assert_eq!(after.iter().map(|&(_, s)| s).max().unwrap(), best + 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rotted_primary_restores_from_slot() {
        let (path, mut bytes) = build_image("restore.nvr");
        // Rot the magic: primary dies, slots untouched.
        bytes[0] ^= 0xFF;
        let rep = verify_bytes(&bytes);
        assert!(!rep.primary_ok());
        let active = rep.active_slot.expect("slots survive primary rot");
        restore_slot(&mut bytes, active);
        assert!(verify_bytes(&bytes).primary_ok());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_slot_is_detected_and_other_slot_wins() {
        let (path, mut bytes) = build_image("slotrot.nvr");
        let a = slot_off(0);
        bytes[a + 100] ^= 0x40;
        let rep = verify_bytes(&bytes);
        assert_eq!(rep.slots[0].state, SlotState::Corrupt);
        assert_eq!(rep.slots[1].state, SlotState::Valid);
        assert_eq!(rep.active_slot, Some(1));
        assert!(!rep.slots_agree);
        assert!(!rep.healthy());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn salvage_quarantines_out_of_bounds_root() {
        let (path, mut bytes) = build_image("quarantine.nvr");
        // Point the first (only) root way outside the file, in both the
        // primary and the slots, so no checksummed copy can repair it.
        let entry = OFF_ROOTS + ROOT_NAME_CAP + 1;
        let poison = (bytes.len() as u64 + 4096).to_le_bytes();
        bytes[entry..entry + 8].copy_from_slice(&poison);
        for i in 0..META_SLOT_COUNT {
            let off = slot_off(i) + entry;
            bytes[off..off + 8].copy_from_slice(&poison);
            // Reseal the slot so the bad root is its checksummed truth.
            let s = slot_off(i);
            let snap = RegionHeader::snapshot_len();
            let seq = read_u64(&bytes, s + snap);
            let crc = slot_crc(&bytes[s..s + snap], seq);
            write_u64(&mut bytes, s + snap + 8, crc);
        }
        let rep = salvage_in_place(&mut bytes).unwrap();
        assert_eq!(rep.quarantined_roots.len(), 1, "{rep}");
        assert!(rep.primary_ok());
        let clean = verify_bytes(&bytes);
        assert!(clean.root_errors.is_empty());
        assert!(!clean.clean, "salvage marks the image dirty");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn salvage_freezes_unverifiable_allocator() {
        let (path, mut bytes) = build_image("freeze.nvr");
        // Rot a free-list head in the primary AND both slots so the
        // allocator state has no good copy anywhere.
        let poison = 0x1337u64.to_le_bytes(); // unaligned, in-bounds-ish junk
        for base in std::iter::once(0).chain((0..META_SLOT_COUNT).map(slot_off)) {
            let off = base + OFF_ALLOC_LISTS;
            bytes[off..off + 8].copy_from_slice(&poison);
            if base != 0 {
                let snap = RegionHeader::snapshot_len();
                let seq = read_u64(&bytes, base + snap);
                let crc = slot_crc(&bytes[base..base + snap], seq);
                write_u64(&mut bytes, base + snap + 8, crc);
            }
        }
        assert!(!verify_bytes(&bytes).alloc_ok());
        let rep = salvage_in_place(&mut bytes).unwrap();
        assert!(rep.primary_ok(), "{rep}");
        assert!(rep.repairs.iter().any(|r| r.contains("frozen")), "{rep}");
        let frozen = verify_bytes(&bytes);
        assert!(frozen.alloc_ok());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn unsalvageable_when_boot_and_slots_are_gone() {
        let (path, mut bytes) = build_image("gone.nvr");
        bytes[0] ^= 0xFF; // magic
        for i in 0..META_SLOT_COUNT {
            let off = slot_off(i);
            bytes[off + 200] ^= 0x01; // break both CRCs
        }
        assert!(matches!(
            salvage_in_place(&mut bytes),
            Err(NvError::BadImage(_))
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bitmap_rot_fails_health_but_not_primary() {
        let (path, mut bytes) = build_image("llrot.nvr");
        let ll_dir = read_u64(&bytes, OFF_ALLOC_LL_DIR) as usize;
        assert_ne!(ll_dir, 0, "default-created images carry a bitmap directory");
        // Flip an allocation bit in the first descriptor: the structure
        // stays plausible, but the clean image's page CRC (and the free
        // counter cross-check) must catch it.
        bytes[ll_dir + llalloc::DESC_SIZE + llalloc::D_BITMAP] ^= 0x01;
        let rep = verify_bytes(&bytes);
        assert!(rep.primary_ok(), "{}", rep.damage_summary());
        assert!(!rep.llalloc_errors.is_empty(), "{rep}");
        assert!(!rep.healthy(), "{rep}");
        assert!(
            rep.llalloc_errors.iter().any(|e| e.contains("CRC")),
            "{rep}"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bitmap_structural_rot_is_caught_even_when_dirty() {
        let (path, mut bytes) = build_image("llmagic.nvr");
        let ll_dir = read_u64(&bytes, OFF_ALLOC_LL_DIR) as usize;
        bytes[OFF_FLAGS] |= 1; // dirty: CRC/counter checks are off
        bytes[ll_dir] ^= 0xFF; // page magic
        let rep = verify_bytes(&bytes);
        assert!(
            rep.llalloc_errors.iter().any(|e| e.contains("magic")),
            "{rep}"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn salvage_detaches_unverifiable_bitmap_directory() {
        let (path, mut bytes) = build_image("lldetach.nvr");
        let ll_dir = read_u64(&bytes, OFF_ALLOC_LL_DIR) as usize;
        bytes[ll_dir + llalloc::DESC_SIZE + llalloc::D_BITMAP] ^= 0x01;
        let rep = salvage_in_place(&mut bytes).unwrap();
        assert!(rep.repairs.iter().any(|r| r.contains("detached")), "{rep}");
        assert_eq!(read_u64(&bytes, OFF_ALLOC_LL_DIR), 0);
        let after = verify_bytes(&bytes);
        assert!(after.llalloc_errors.is_empty(), "{after}");
        assert!(after.primary_ok());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn verify_never_reads_past_a_lying_alloc_end() {
        let (path, mut bytes) = build_image("liar.nvr");
        // An `end` far beyond the file must be reported, not chased.
        write_u64(&mut bytes, OFF_ALLOC_END, u64::MAX / 2);
        let rep = verify_bytes(&bytes);
        assert!(!rep.alloc_ok());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn short_buffer_reports_instead_of_panicking() {
        let rep = verify_bytes(&[0u8; 64]);
        assert!(!rep.boot_ok());
        assert!(rep.active_slot.is_none());
    }
}
