//! Process-global registry of open regions, plus the runtime structures the
//! *baseline* pointer representations depend on:
//!
//! * a **hashtable** mapping region ID → base address — the lookup a fat
//!   pointer performs on every dereference (Section 5, "Fat Pointer");
//! * the **`lastID`/`lastAddr` cache** used by the "fat pointer with cache"
//!   variant (Section 6.3);
//! * an auto-incrementing region-ID allocator.
//!
//! The hashtable mirrors PMDK, whose `pmemobj_direct` resolves the oid's
//! pool id through a cuckoo hashtable behind a library-call boundary —
//! reproducing the cost profile the paper measures for PMEM.IO-style fat
//! pointers. Lookups are lock-free; mutations take a mutex.

use parking_lot::{Mutex, RwLock};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};

/// Number of slots in the fat-pointer cuckoo table (power of two).
const FAT_SLOTS: usize = 1024;

/// One slot of the cuckoo table. `rid == 0` means empty.
struct FatSlot {
    rid: AtomicU32,
    base: AtomicUsize,
}

/// The region-ID -> base hashtable that fat pointers resolve through.
///
/// Modeled on PMDK's `pmemobj_direct` path, which looks the pool up in a
/// cuckoo hashtable by the oid's pool id: two hash positions per key, a
/// (non-inlined) probe of each. Mutations (region open/close) take a lock
/// and relocate entries cuckoo-style; lookups are lock-free.
struct FatTable {
    slots: [FatSlot; FAT_SLOTS],
    write_lock: Mutex<()>,
}

/// 64-bit avalanche mix (the murmur3/xxhash finalizer), matching the
/// weight of the hashing PMDK applies to a pool uuid per lookup.
#[inline]
fn mix64(mut h: u64) -> u64 {
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 33;
    h = h.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    h ^= h >> 33;
    h
}

#[inline]
fn fat_h1(rid: u32) -> usize {
    mix64(mix64(rid as u64)) as usize & (FAT_SLOTS - 1)
}

#[inline]
fn fat_h2(rid: u32) -> usize {
    mix64(mix64(rid as u64 ^ 0x9E37_79B9_7F4A_7C15)) as usize & (FAT_SLOTS - 1)
}

impl FatTable {
    const fn new() -> FatTable {
        #[allow(clippy::declare_interior_mutable_const)]
        const EMPTY: FatSlot = FatSlot {
            rid: AtomicU32::new(0),
            base: AtomicUsize::new(0),
        };
        FatTable {
            slots: [EMPTY; FAT_SLOTS],
            write_lock: Mutex::new(()),
        }
    }

    /// The fat-pointer dereference path. Deliberately not inlined: PMDK's
    /// equivalent is a library call, and the call boundary is part of the
    /// cost the paper measures.
    #[inline(never)]
    fn lookup(&self, rid: u32) -> Option<usize> {
        let s1 = &self.slots[fat_h1(rid)];
        if s1.rid.load(Ordering::Acquire) == rid {
            let base = s1.base.load(Ordering::Acquire);
            if base != 0 {
                return Some(base);
            }
        }
        let s2 = &self.slots[fat_h2(rid)];
        if s2.rid.load(Ordering::Acquire) == rid {
            let base = s2.base.load(Ordering::Acquire);
            if base != 0 {
                return Some(base);
            }
        }
        None
    }

    fn insert(&self, rid: u32, base: usize) {
        let _g = self.write_lock.lock();
        self.insert_locked(rid, base);
    }

    fn insert_locked(&self, mut rid: u32, mut base: usize) {
        // Update in place if the key is already present.
        for h in [fat_h1(rid), fat_h2(rid)] {
            let slot = &self.slots[h];
            if slot.rid.load(Ordering::Acquire) == rid {
                slot.base.store(base, Ordering::Release);
                return;
            }
        }
        // Classic cuckoo placement: claim a position, evicting and
        // relocating occupants to their alternate position as needed.
        let mut idx = fat_h1(rid);
        for _ in 0..FAT_SLOTS {
            let slot = &self.slots[idx];
            let occupant = slot.rid.load(Ordering::Acquire);
            if occupant == 0 {
                // Publish base before rid so lookups never see a fresh rid
                // with a stale base.
                slot.base.store(base, Ordering::Release);
                slot.rid.store(rid, Ordering::Release);
                return;
            }
            let obase = slot.base.load(Ordering::Acquire);
            slot.base.store(base, Ordering::Release);
            slot.rid.store(rid, Ordering::Release);
            rid = occupant;
            base = obase;
            idx = if fat_h1(rid) == idx {
                fat_h2(rid)
            } else {
                fat_h1(rid)
            };
        }
        panic!("fat table full: too many open regions");
    }

    fn remove(&self, rid: u32) {
        let _g = self.write_lock.lock();
        for h in [fat_h1(rid), fat_h2(rid)] {
            let slot = &self.slots[h];
            if slot.rid.load(Ordering::Acquire) == rid {
                slot.base.store(0, Ordering::Release);
                slot.rid.store(0, Ordering::Release);
                return;
            }
        }
    }
}

static FAT: FatTable = FatTable::new();

/// Looks up the base address of region `rid` through the fat-pointer
/// hashtable. This is the per-dereference cost of the fat-pointer baseline.
#[inline]
pub fn fat_lookup(rid: u32) -> Option<usize> {
    FAT.lookup(rid)
}

// -- lastID / lastAddr cache (fat pointer with cache) -----------------------

static LAST_ID: AtomicU32 = AtomicU32::new(0);
static LAST_BASE: AtomicUsize = AtomicUsize::new(0);
static CACHE_HITS: AtomicU64 = AtomicU64::new(0);
static CACHE_MISSES: AtomicU64 = AtomicU64::new(0);
static COUNT_CACHE: AtomicBool = AtomicBool::new(false);

/// Looks up region `rid`, consulting the `lastID`/`lastAddr` cache first —
/// the paper's "fat pointer with cache" dereference path.
#[inline]
pub fn fat_lookup_cached(rid: u32) -> Option<usize> {
    if LAST_ID.load(Ordering::Relaxed) == rid {
        let base = LAST_BASE.load(Ordering::Relaxed);
        if base != 0 {
            if COUNT_CACHE.load(Ordering::Relaxed) {
                CACHE_HITS.fetch_add(1, Ordering::Relaxed);
            }
            return Some(base);
        }
    }
    if COUNT_CACHE.load(Ordering::Relaxed) {
        CACHE_MISSES.fetch_add(1, Ordering::Relaxed);
    }
    let base = FAT.lookup(rid)?;
    LAST_BASE.store(base, Ordering::Relaxed);
    LAST_ID.store(rid, Ordering::Relaxed);
    Some(base)
}

/// Enables or disables cache hit/miss counting (for the ABL-CACHE
/// ablation). Returns the previous setting.
pub fn set_cache_counting(on: bool) -> bool {
    COUNT_CACHE.swap(on, Ordering::Relaxed)
}

/// Returns `(hits, misses)` accumulated while counting was enabled.
pub fn cache_stats() -> (u64, u64) {
    (
        CACHE_HITS.load(Ordering::Relaxed),
        CACHE_MISSES.load(Ordering::Relaxed),
    )
}

/// Resets cache statistics and invalidates the cache entry.
pub fn reset_cache() {
    CACHE_HITS.store(0, Ordering::Relaxed);
    CACHE_MISSES.store(0, Ordering::Relaxed);
    LAST_ID.store(0, Ordering::Relaxed);
    LAST_BASE.store(0, Ordering::Relaxed);
}

// -- open-region registry ----------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
/// Summary of an open region, as recorded in the registry.
pub struct RegionInfo {
    /// Region ID.
    pub rid: u32,
    /// Current base address.
    pub base: usize,
    /// Region size in bytes.
    pub size: usize,
}

// Read-mostly: mutated only at region open/close, read by every
// `open_regions`/`region_info` query, so readers share the lock.
static OPEN: RwLock<Vec<RegionInfo>> = RwLock::new(Vec::new());
static NEXT_RID: AtomicU32 = AtomicU32::new(1);

/// Records an open region and publishes it to the fat-pointer table.
pub(crate) fn register(rid: u32, base: usize, size: usize) {
    FAT.insert(rid, base);
    let mut open = OPEN.write();
    open.retain(|r| r.rid != rid);
    open.push(RegionInfo { rid, base, size });
}

/// Removes a region from the registry and the fat-pointer table, and
/// invalidates the last-region cache if it points at it.
pub(crate) fn unregister(rid: u32) {
    FAT.remove(rid);
    if LAST_ID.load(Ordering::Relaxed) == rid {
        LAST_BASE.store(0, Ordering::Relaxed);
        LAST_ID.store(0, Ordering::Relaxed);
    }
    OPEN.write().retain(|r| r.rid != rid);
}

/// Allocates a fresh region ID, never reusing one handed out before in this
/// process and skipping any id in `avoid`.
pub fn alloc_rid(max_rid: u32, avoid: impl Fn(u32) -> bool) -> Option<u32> {
    loop {
        let rid = NEXT_RID.fetch_add(1, Ordering::Relaxed);
        if rid > max_rid {
            return None;
        }
        if !avoid(rid) {
            return Some(rid);
        }
    }
}

/// Snapshot of the regions currently open in this process.
pub fn open_regions() -> Vec<RegionInfo> {
    OPEN.read().clone()
}

/// Looks up an open region's info by id.
pub fn region_info(rid: u32) -> Option<RegionInfo> {
    OPEN.read().iter().find(|r| r.rid == rid).copied()
}

#[cfg(test)]
mod tests {
    use super::*;

    // Registry state is process-global; tests use rids in a high band to
    // avoid colliding with region tests running in the same binary.
    const R: u32 = 60_000;

    #[test]
    fn fat_table_insert_lookup_remove() {
        register(R, 0x1000, 64);
        assert_eq!(fat_lookup(R), Some(0x1000));
        unregister(R);
        assert_eq!(fat_lookup(R), None);
    }

    #[test]
    fn fat_table_rebind_updates_base() {
        register(R + 1, 0x2000, 64);
        register(R + 1, 0x3000, 64);
        assert_eq!(fat_lookup(R + 1), Some(0x3000));
        unregister(R + 1);
    }

    #[test]
    fn many_rids_coexist_under_cuckoo_relocation() {
        // Enough keys that cuckoo kicks are exercised, all must resolve.
        let rids: Vec<u32> = (0..200).map(|i| R + 100 + i * 7).collect();
        for (i, &rid) in rids.iter().enumerate() {
            register(rid, 0x1_0000 + i * 16, 64);
        }
        for (i, &rid) in rids.iter().enumerate() {
            assert_eq!(fat_lookup(rid), Some(0x1_0000 + i * 16), "rid {rid}");
        }
        for &rid in &rids {
            unregister(rid);
        }
        for &rid in &rids {
            assert_eq!(fat_lookup(rid), None);
        }
    }

    #[test]
    fn cached_lookup_hits_after_first_miss() {
        register(R + 2, 0x4000, 64);
        reset_cache();
        set_cache_counting(true);
        assert_eq!(fat_lookup_cached(R + 2), Some(0x4000));
        assert_eq!(fat_lookup_cached(R + 2), Some(0x4000));
        assert_eq!(fat_lookup_cached(R + 2), Some(0x4000));
        set_cache_counting(false);
        let (hits, misses) = cache_stats();
        assert_eq!(misses, 1);
        assert_eq!(hits, 2);
        unregister(R + 2);
        assert_eq!(
            fat_lookup_cached(R + 2),
            None,
            "unregister invalidates cache"
        );
    }

    #[test]
    fn alloc_rid_skips_avoided() {
        let a = alloc_rid(u32::MAX, |_| false).unwrap();
        let b = alloc_rid(u32::MAX, |r| r == a + 1).unwrap();
        assert!(b > a && b != a + 1);
    }

    #[test]
    fn open_regions_lists_registered() {
        register(R + 3, 0x5000, 128);
        let info = region_info(R + 3).unwrap();
        assert_eq!(
            info,
            RegionInfo {
                rid: R + 3,
                base: 0x5000,
                size: 128
            }
        );
        assert!(open_regions().iter().any(|r| r.rid == R + 3));
        unregister(R + 3);
        assert!(region_info(R + 3).is_none());
    }
}
