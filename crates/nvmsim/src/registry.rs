//! Process-global registry of open regions, plus the runtime structures the
//! *baseline* pointer representations depend on:
//!
//! * a **hashtable** mapping region ID → base address — the lookup a fat
//!   pointer performs on every dereference (Section 5, "Fat Pointer");
//! * the **`lastID`/`lastAddr` cache** used by the "fat pointer with cache"
//!   variant (Section 6.3);
//! * an auto-incrementing region-ID allocator.
//!
//! The hashtable mirrors PMDK, whose `pmemobj_direct` resolves the oid's
//! pool id through a cuckoo hashtable behind a library-call boundary —
//! reproducing the cost profile the paper measures for PMEM.IO-style fat
//! pointers. Lookups are lock-free; mutations take a mutex.

use crate::metrics::{self, Counter};
use parking_lot::{Mutex, RwLock};
use std::sync::atomic::{fence, AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};

/// Number of slots in the fat-pointer cuckoo table (power of two).
const FAT_SLOTS: usize = 1024;

/// One slot of the cuckoo table. `rid == 0` means empty.
struct FatSlot {
    rid: AtomicU32,
    base: AtomicUsize,
}

/// The region-ID -> base hashtable that fat pointers resolve through.
///
/// Modeled on PMDK's `pmemobj_direct` path, which looks the pool up in a
/// cuckoo hashtable by the oid's pool id: two hash positions per key, a
/// (non-inlined) probe of each. Mutations (region open/close) take a lock
/// and relocate entries cuckoo-style; lookups take no lock but seqlock-
/// validate against [`TABLE_GEN`] so a probe racing a relocation chain is
/// retried instead of observing a half-moved entry.
struct FatTable {
    slots: [FatSlot; FAT_SLOTS],
    write_lock: Mutex<()>,
}

/// 64-bit avalanche mix (the murmur3/xxhash finalizer), matching the
/// weight of the hashing PMDK applies to a pool uuid per lookup.
#[inline]
fn mix64(mut h: u64) -> u64 {
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 33;
    h = h.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    h ^= h >> 33;
    h
}

#[inline]
fn fat_h1(rid: u32) -> usize {
    mix64(mix64(rid as u64)) as usize & (FAT_SLOTS - 1)
}

#[inline]
fn fat_h2(rid: u32) -> usize {
    mix64(mix64(rid as u64 ^ 0x9E37_79B9_7F4A_7C15)) as usize & (FAT_SLOTS - 1)
}

impl FatTable {
    const fn new() -> FatTable {
        #[allow(clippy::declare_interior_mutable_const)]
        const EMPTY: FatSlot = FatSlot {
            rid: AtomicU32::new(0),
            base: AtomicUsize::new(0),
        };
        FatTable {
            slots: [EMPTY; FAT_SLOTS],
            write_lock: Mutex::new(()),
        }
    }

    /// The fat-pointer dereference path. Deliberately not inlined: PMDK's
    /// equivalent is a library call, and the call boundary is part of the
    /// cost the paper measures.
    #[inline(never)]
    fn lookup(&self, rid: u32) -> Option<usize> {
        self.lookup_with_gen(rid).0
    }

    /// Seqlock-consistent probe. Cuckoo relocation rewrites `(rid, base)`
    /// word-by-word, so a raw probe racing an insert can pair a stale rid
    /// with the evictor's base, or miss a key mid-flight to its alternate
    /// slot. Mutators bump [`TABLE_GEN`] to odd for the whole relocation
    /// chain, so retrying until the generation is even and unchanged across
    /// the probe yields a result from a quiescent table. Returns that
    /// (even) generation alongside the result, for the last-region cache
    /// to stamp its entry with.
    fn lookup_with_gen(&self, rid: u32) -> (Option<usize>, u64) {
        loop {
            let g1 = TABLE_GEN.load(Ordering::Acquire);
            if g1 & 1 != 0 {
                std::hint::spin_loop();
                continue;
            }
            let found = self.probe(rid);
            fence(Ordering::Acquire);
            if TABLE_GEN.load(Ordering::Relaxed) == g1 {
                return (found, g1);
            }
        }
    }

    #[inline]
    fn probe(&self, rid: u32) -> Option<usize> {
        let s1 = &self.slots[fat_h1(rid)];
        if s1.rid.load(Ordering::Acquire) == rid {
            let base = s1.base.load(Ordering::Acquire);
            if base != 0 {
                return Some(base);
            }
        }
        let s2 = &self.slots[fat_h2(rid)];
        if s2.rid.load(Ordering::Acquire) == rid {
            let base = s2.base.load(Ordering::Acquire);
            if base != 0 {
                return Some(base);
            }
        }
        None
    }

    fn insert(&self, rid: u32, base: usize) {
        let _g = self.write_lock.lock();
        // Seqlock-style generation bump around every table mutation (the
        // write lock serializes mutators, so parity is exact): odd means a
        // mutation is in flight, and any advance invalidates entries the
        // last-region cache captured under an older generation. This is
        // what makes a rebind of a live rid (same id, new base) drop the
        // stale cached base — the fat table alone updating was not enough.
        TABLE_GEN.fetch_add(1, Ordering::SeqCst);
        self.insert_locked(rid, base);
        TABLE_GEN.fetch_add(1, Ordering::SeqCst);
    }

    fn insert_locked(&self, mut rid: u32, mut base: usize) {
        // Update in place if the key is already present.
        for h in [fat_h1(rid), fat_h2(rid)] {
            let slot = &self.slots[h];
            if slot.rid.load(Ordering::Acquire) == rid {
                slot.base.store(base, Ordering::Release);
                return;
            }
        }
        // Classic cuckoo placement: claim a position, evicting and
        // relocating occupants to their alternate position as needed.
        let mut idx = fat_h1(rid);
        for _ in 0..FAT_SLOTS {
            let slot = &self.slots[idx];
            let occupant = slot.rid.load(Ordering::Acquire);
            if occupant == 0 {
                // Publish base before rid so lookups never see a fresh rid
                // with a stale base.
                slot.base.store(base, Ordering::Release);
                slot.rid.store(rid, Ordering::Release);
                return;
            }
            let obase = slot.base.load(Ordering::Acquire);
            slot.base.store(base, Ordering::Release);
            slot.rid.store(rid, Ordering::Release);
            rid = occupant;
            base = obase;
            idx = if fat_h1(rid) == idx {
                fat_h2(rid)
            } else {
                fat_h1(rid)
            };
        }
        panic!("fat table full: too many open regions");
    }

    fn remove(&self, rid: u32) {
        let _g = self.write_lock.lock();
        TABLE_GEN.fetch_add(1, Ordering::SeqCst);
        self.remove_locked(rid);
        TABLE_GEN.fetch_add(1, Ordering::SeqCst);
    }

    fn remove_locked(&self, rid: u32) {
        for h in [fat_h1(rid), fat_h2(rid)] {
            let slot = &self.slots[h];
            if slot.rid.load(Ordering::Acquire) == rid {
                slot.base.store(0, Ordering::Release);
                slot.rid.store(0, Ordering::Release);
                return;
            }
        }
    }
}

static FAT: FatTable = FatTable::new();

/// Looks up the base address of region `rid` through the fat-pointer
/// hashtable. This is the per-dereference cost of the fat-pointer baseline.
#[inline]
pub fn fat_lookup(rid: u32) -> Option<usize> {
    metrics::incr(Counter::FatLookups);
    FAT.lookup(rid)
}

// -- lastID / lastAddr cache (fat pointer with cache) -----------------------
//
// The paper's Section 6.3 cache is two process globals. A naive port —
// two independent relaxed atomics — is racy: with concurrent refills,
// thread A can store `lastAddr = baseA`, thread B then stores both of its
// words, and A's trailing `lastID = ridA` store pairs A's id with B's
// base. A reader then "hits" and fabricates a wild pointer into the wrong
// region. The cache here is a **seqlock**: a writer flips `seq` odd,
// writes the `(gen, rid, base)` triple, and flips `seq` back even; a
// reader rejects any snapshot taken while `seq` was odd or changed, so a
// torn pair can never be observed.
//
// `gen` guards a second race: a refill that looked the base up *before* a
// concurrent close/rebind could publish the pair *after* the mutator's
// invalidation pass, resurrecting a stale base. Each entry therefore
// records the fat-table generation (`TABLE_GEN`, bumped twice around
// every mutation under the table's write lock) it was read under, and a
// hit requires the generation to be both unchanged and even — i.e. no
// table mutation overlapped the entry's lifetime. Invalidation is thus
// implicit and race-free; mutators never touch the cache words at all.

/// Fat-table generation: even = stable, odd = mutation in flight.
static TABLE_GEN: AtomicU64 = AtomicU64::new(0);

struct LastCache {
    /// Seqlock word: even = stable, odd = writer active.
    seq: AtomicU64,
    /// `TABLE_GEN` value the entry was read under.
    gen: AtomicU64,
    /// Cached region id (`lastID`).
    rid: AtomicU32,
    /// Cached region base (`lastAddr`).
    base: AtomicUsize,
}

static LAST: LastCache = LastCache {
    seq: AtomicU64::new(0),
    gen: AtomicU64::new(0),
    rid: AtomicU32::new(0),
    base: AtomicUsize::new(0),
};

static CACHE_HITS: AtomicU64 = AtomicU64::new(0);
static CACHE_MISSES: AtomicU64 = AtomicU64::new(0);
static COUNT_CACHE: AtomicBool = AtomicBool::new(false);

/// Best-effort publish of a freshly looked-up `(rid, base)` pair read
/// under table generation `gen`. Losing the seqlock CAS just skips the
/// update — the cache is an optimization, not a source of truth.
#[inline]
fn publish_last(gen: u64, rid: u32, base: usize) {
    let s = LAST.seq.load(Ordering::Relaxed);
    if s & 1 != 0
        || LAST
            .seq
            .compare_exchange(s, s + 1, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
    {
        return;
    }
    LAST.gen.store(gen, Ordering::Relaxed);
    LAST.rid.store(rid, Ordering::Relaxed);
    LAST.base.store(base, Ordering::Relaxed);
    LAST.seq.store(s + 2, Ordering::Release);
}

/// Clears the cache entry, spinning until the write takes (used by
/// [`reset_cache`], where losing the race is not acceptable).
fn invalidate_last() {
    loop {
        let s = LAST.seq.load(Ordering::Relaxed);
        if s & 1 == 0
            && LAST
                .seq
                .compare_exchange(s, s + 1, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
        {
            LAST.gen.store(0, Ordering::Relaxed);
            LAST.rid.store(0, Ordering::Relaxed);
            LAST.base.store(0, Ordering::Relaxed);
            LAST.seq.store(s + 2, Ordering::Release);
            return;
        }
        std::hint::spin_loop();
    }
}

/// Looks up region `rid`, consulting the `lastID`/`lastAddr` cache first —
/// the paper's "fat pointer with cache" dereference path.
#[inline]
pub fn fat_lookup_cached(rid: u32) -> Option<usize> {
    // Seqlock read of the (gen, rid, base) triple.
    let s1 = LAST.seq.load(Ordering::Acquire);
    if s1 & 1 == 0 {
        let cgen = LAST.gen.load(Ordering::Relaxed);
        let crid = LAST.rid.load(Ordering::Relaxed);
        let cbase = LAST.base.load(Ordering::Relaxed);
        fence(Ordering::Acquire);
        if LAST.seq.load(Ordering::Relaxed) == s1
            && crid == rid
            && cbase != 0
            && TABLE_GEN.load(Ordering::SeqCst) == cgen
        {
            metrics::incr(Counter::FatCacheHits);
            if COUNT_CACHE.load(Ordering::Relaxed) {
                CACHE_HITS.fetch_add(1, Ordering::Relaxed);
            }
            return Some(cbase);
        }
    }
    metrics::incr(Counter::FatCacheMisses);
    if COUNT_CACHE.load(Ordering::Relaxed) {
        CACHE_MISSES.fetch_add(1, Ordering::Relaxed);
    }
    metrics::incr(Counter::FatLookups);
    // lookup_with_gen only returns results validated under an even,
    // unmoved generation; stamping the entry with it means any later
    // table mutation is rejected at hit time by the comparison above.
    let (found, gen) = FAT.lookup_with_gen(rid);
    let base = found?;
    publish_last(gen, rid, base);
    Some(base)
}

/// The current fat-table generation (test hook: stable measurement
/// windows re-run when this moved underneath them).
#[doc(hidden)]
pub fn table_generation() -> u64 {
    TABLE_GEN.load(Ordering::SeqCst)
}

/// Rebinds `rid` in the fat table, exactly as a remap-at-new-address
/// reopen would (test hook for cache-invalidation regression tests).
#[doc(hidden)]
pub fn rebind_for_tests(rid: u32, base: usize, size: usize) {
    register(rid, base, size);
}

/// Enables or disables cache hit/miss counting (for the ABL-CACHE
/// ablation). Returns the previous setting.
pub fn set_cache_counting(on: bool) -> bool {
    COUNT_CACHE.swap(on, Ordering::Relaxed)
}

/// Returns `(hits, misses)` accumulated while counting was enabled.
pub fn cache_stats() -> (u64, u64) {
    (
        CACHE_HITS.load(Ordering::Relaxed),
        CACHE_MISSES.load(Ordering::Relaxed),
    )
}

/// Resets cache statistics and invalidates the cache entry.
pub fn reset_cache() {
    CACHE_HITS.store(0, Ordering::Relaxed);
    CACHE_MISSES.store(0, Ordering::Relaxed);
    invalidate_last();
}

// -- open-region registry ----------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
/// Summary of an open region, as recorded in the registry.
pub struct RegionInfo {
    /// Region ID.
    pub rid: u32,
    /// Current base address.
    pub base: usize,
    /// Region size in bytes.
    pub size: usize,
}

// Read-mostly: mutated only at region open/close, read by every
// `open_regions`/`region_info` query, so readers share the lock.
static OPEN: RwLock<Vec<RegionInfo>> = RwLock::new(Vec::new());
static NEXT_RID: AtomicU32 = AtomicU32::new(1);

/// Records an open region and publishes it to the fat-pointer table.
/// Rebinding a live rid (same id, new base) advances the table generation,
/// which invalidates any last-region cache entry for the old base.
pub(crate) fn register(rid: u32, base: usize, size: usize) {
    metrics::incr(Counter::RegionOpens);
    FAT.insert(rid, base);
    let mut open = OPEN.write();
    open.retain(|r| r.rid != rid);
    open.push(RegionInfo { rid, base, size });
}

/// Removes a region from the registry and the fat-pointer table. The
/// generation bump inside [`FatTable::remove`] invalidates any last-region
/// cache entry pointing at it — without the check-then-act race the old
/// explicit invalidation had.
pub(crate) fn unregister(rid: u32) {
    metrics::incr(Counter::RegionCloses);
    FAT.remove(rid);
    OPEN.write().retain(|r| r.rid != rid);
}

/// Allocates a fresh region ID, never reusing one handed out before in this
/// process and skipping any id in `avoid`.
pub fn alloc_rid(max_rid: u32, avoid: impl Fn(u32) -> bool) -> Option<u32> {
    loop {
        let rid = NEXT_RID.fetch_add(1, Ordering::Relaxed);
        if rid > max_rid {
            return None;
        }
        if !avoid(rid) {
            return Some(rid);
        }
    }
}

/// Snapshot of the regions currently open in this process.
pub fn open_regions() -> Vec<RegionInfo> {
    OPEN.read().clone()
}

/// Looks up an open region's info by id.
pub fn region_info(rid: u32) -> Option<RegionInfo> {
    OPEN.read().iter().find(|r| r.rid == rid).copied()
}

#[cfg(test)]
mod tests {
    use super::*;

    // Registry state is process-global; tests use rids in a high band to
    // avoid colliding with region tests running in the same binary.
    const R: u32 = 60_000;

    #[test]
    fn fat_table_insert_lookup_remove() {
        register(R, 0x1000, 64);
        assert_eq!(fat_lookup(R), Some(0x1000));
        unregister(R);
        assert_eq!(fat_lookup(R), None);
    }

    #[test]
    fn fat_table_rebind_updates_base() {
        register(R + 1, 0x2000, 64);
        register(R + 1, 0x3000, 64);
        assert_eq!(fat_lookup(R + 1), Some(0x3000));
        unregister(R + 1);
    }

    #[test]
    fn many_rids_coexist_under_cuckoo_relocation() {
        // Enough keys that cuckoo kicks are exercised, all must resolve.
        let rids: Vec<u32> = (0..200).map(|i| R + 100 + i * 7).collect();
        for (i, &rid) in rids.iter().enumerate() {
            register(rid, 0x1_0000 + i * 16, 64);
        }
        for (i, &rid) in rids.iter().enumerate() {
            assert_eq!(fat_lookup(rid), Some(0x1_0000 + i * 16), "rid {rid}");
        }
        for &rid in &rids {
            unregister(rid);
        }
        for &rid in &rids {
            assert_eq!(fat_lookup(rid), None);
        }
    }

    #[test]
    fn cached_lookup_hits_after_first_miss() {
        register(R + 2, 0x4000, 64);
        // Any region open/close in the process invalidates the cache (the
        // generation scheme is global), so re-run the measurement window
        // if a concurrently running test churned the table mid-sequence.
        let (hits, misses) = loop {
            let gen = table_generation();
            reset_cache();
            set_cache_counting(true);
            assert_eq!(fat_lookup_cached(R + 2), Some(0x4000));
            assert_eq!(fat_lookup_cached(R + 2), Some(0x4000));
            assert_eq!(fat_lookup_cached(R + 2), Some(0x4000));
            set_cache_counting(false);
            if table_generation() == gen {
                break cache_stats();
            }
        };
        assert_eq!(misses, 1);
        assert_eq!(hits, 2);
        unregister(R + 2);
        assert_eq!(
            fat_lookup_cached(R + 2),
            None,
            "unregister invalidates cache"
        );
    }

    #[test]
    fn rebind_invalidates_cached_base() {
        register(R + 10, 0x7000, 64);
        reset_cache();
        // Warm the cache with the old base.
        assert_eq!(fat_lookup_cached(R + 10), Some(0x7000));
        // Rebind the live rid at a different base, as a
        // remap-at-different-address reopen does.
        register(R + 10, 0x8000, 64);
        assert_eq!(
            fat_lookup_cached(R + 10),
            Some(0x8000),
            "cached stale base must not survive a rebind"
        );
        unregister(R + 10);
    }

    #[test]
    fn concurrent_refills_never_tear_the_pair() {
        // Two regions with recognizable bases; four threads alternate
        // lookups so the cache is refilled under heavy contention. Any
        // torn (id, base) pairing returns the wrong region's base.
        let (ra, rb) = (R + 20, R + 21);
        register(ra, 0xA000, 64);
        register(rb, 0xB000, 64);
        let threads: Vec<_> = (0..4)
            .map(|t| {
                std::thread::spawn(move || {
                    for i in 0..20_000u32 {
                        let (rid, want) = if (i + t) % 2 == 0 {
                            (ra, 0xA000)
                        } else {
                            (rb, 0xB000)
                        };
                        assert_eq!(fat_lookup_cached(rid), Some(want), "rid {rid}");
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        unregister(ra);
        unregister(rb);
    }

    #[test]
    fn alloc_rid_skips_avoided() {
        let a = alloc_rid(u32::MAX, |_| false).unwrap();
        let b = alloc_rid(u32::MAX, |r| r == a + 1).unwrap();
        assert!(b > a && b != a + 1);
    }

    #[test]
    fn open_regions_lists_registered() {
        register(R + 3, 0x5000, 128);
        let info = region_info(R + 3).unwrap();
        assert_eq!(
            info,
            RegionInfo {
                rid: R + 3,
                base: 0x5000,
                size: 128
            }
        );
        assert!(open_regions().iter().any(|r| r.rid == R + 3));
        unregister(R + 3);
        assert!(region_info(R + 3).is_none());
    }
}
