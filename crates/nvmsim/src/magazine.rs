//! Per-thread magazine caches over the region allocator.
//!
//! Every class-sized allocation used to funnel through one region-wide
//! mutex, so multi-threaded workloads serialized on a single lock per
//! region. This module gives each *(thread, region)* pair a set of small
//! LIFO caches — **magazines**, one per size class — that serve `alloc`
//! and `dealloc` without touching the region lock at all:
//!
//! * a fast-path `alloc` pops an offset off the calling thread's magazine;
//! * a fast-path `dealloc` pushes the offset back on;
//! * an empty magazine **refills** by unlinking a batch of
//!   [`REFILL_BATCH`] blocks from the shared per-class free list (bump
//!   frontier as fallback) under one short critical section;
//! * a full magazine **flushes** its cold half back to the shared free
//!   list, again under one short critical section.
//!
//! The fast path takes exactly one uncontended per-thread lock; statistics
//! are sharded into the same per-thread structure (`CacheInner`) so no
//! shared cache line is written per operation. The region layer aggregates the shards whenever
//! it already holds the region lock (refill, flush, sync, close).
//!
//! # Crash consistency
//!
//! Magazine contents are *volatile*. On media, a cached block is
//! indistinguishable from an allocated one: the refill batch is unlinked
//! from the persistent free list inside the critical section, so no crash
//! can observe a block that is both on a free list and in a magazine
//! (no double-serve after recovery). The region layer flushes magazines
//! back on clean close, on [`crate::Region::flush_magazines`], and from a
//! thread-exit hook (the drop of the thread-local cache table), so a
//! crash leaks at most the
//! blocks cached in-flight — bounded by `threads × MAGAZINE_CAP` per
//! class, and the image remains valid for the existing reopen path.

use crate::alloc::{CLASS_SIZES, NUM_CLASSES};
use crate::region::Inner;
use parking_lot::Mutex;
use std::cell::RefCell;
use std::sync::{Arc, Weak};

/// Maximum blocks a single magazine holds before its cold half is flushed
/// back to the shared free list.
pub const MAGAZINE_CAP: usize = 64;

/// Blocks unlinked from the shared allocator per refill (the first serves
/// the triggering allocation; the rest land in the magazine).
pub const REFILL_BATCH: usize = 32;

/// Per-thread shard of the region's allocator statistics. Live counters
/// are deltas (a thread may free blocks another thread allocated);
/// cached counters describe blocks parked in this thread's magazines.
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct LocalStats {
    pub live_bytes: i64,
    pub live_allocs: i64,
    pub alloc_calls: u64,
    pub free_calls: u64,
    pub cached_bytes: u64,
    pub cached_blocks: u64,
}

impl LocalStats {
    pub(crate) fn merge(&mut self, o: &LocalStats) {
        self.live_bytes += o.live_bytes;
        self.live_allocs += o.live_allocs;
        self.alloc_calls += o.alloc_calls;
        self.free_calls += o.free_calls;
        self.cached_bytes += o.cached_bytes;
        self.cached_blocks += o.cached_blocks;
    }
}

/// The lock-protected body of a [`ThreadCache`]: one LIFO magazine per
/// size class plus this thread's statistics shard.
#[derive(Debug, Default)]
pub(crate) struct CacheInner {
    classes: [Vec<u64>; NUM_CLASSES],
    pub(crate) stats: LocalStats,
}

impl CacheInner {
    /// Fast-path alloc: pops the hottest cached block of `class` and
    /// moves it from cached to live accounting.
    pub(crate) fn take(&mut self, class: usize) -> Option<u64> {
        let off = self.classes[class].pop()?;
        let bsize = CLASS_SIZES[class] as u64;
        self.stats.cached_blocks -= 1;
        self.stats.cached_bytes -= bsize;
        self.stats.live_bytes += bsize as i64;
        self.stats.live_allocs += 1;
        self.stats.alloc_calls += 1;
        Some(off)
    }

    /// Fast-path dealloc: pushes a freed block. When the magazine
    /// overflows, returns the cold (oldest) half for the caller to restore
    /// to the shared free list — after releasing this cache's lock, so the
    /// lock order stays `region lock → cache lock` everywhere.
    pub(crate) fn put(&mut self, class: usize, off: u64) -> Option<Vec<u64>> {
        let bsize = CLASS_SIZES[class] as u64;
        self.stats.live_bytes -= bsize as i64;
        self.stats.live_allocs -= 1;
        self.stats.free_calls += 1;
        self.stats.cached_blocks += 1;
        self.stats.cached_bytes += bsize;
        let mag = &mut self.classes[class];
        mag.push(off);
        if mag.len() > MAGAZINE_CAP {
            let cold: Vec<u64> = mag.drain(..MAGAZINE_CAP / 2).collect();
            self.stats.cached_blocks -= cold.len() as u64;
            self.stats.cached_bytes -= cold.len() as u64 * bsize;
            Some(cold)
        } else {
            None
        }
    }

    /// Accounts for a refill: the first carved block goes straight to the
    /// caller (live), the rest into the magazine (cached).
    pub(crate) fn stock(&mut self, class: usize, offs: &[u64]) {
        let bsize = CLASS_SIZES[class] as u64;
        self.classes[class].extend_from_slice(offs);
        self.stats.cached_blocks += offs.len() as u64;
        self.stats.cached_bytes += offs.len() as u64 * bsize;
        self.stats.live_bytes += bsize as i64;
        self.stats.live_allocs += 1;
        self.stats.alloc_calls += 1;
    }

    /// Removes and returns every cached block of `class`, moving them out
    /// of cached accounting (the caller restores them to the free list).
    pub(crate) fn drain_class(&mut self, class: usize) -> Vec<u64> {
        let blocks = std::mem::take(&mut self.classes[class]);
        self.stats.cached_blocks -= blocks.len() as u64;
        self.stats.cached_bytes -= blocks.len() as u64 * CLASS_SIZES[class] as u64;
        blocks
    }
}

/// All magazines of one thread for one open region. The mutex is
/// per-thread and therefore uncontended in steady state; it exists so
/// that region close, statistics aggregation, and out-of-memory reclaim
/// can reach *other* threads' magazines safely.
#[derive(Debug, Default)]
pub(crate) struct ThreadCache {
    pub(crate) inner: Mutex<CacheInner>,
}

struct TlsEntry {
    /// Unique id of the region *open session* this cache belongs to
    /// (region ids are reused across opens; instances never are).
    instance: u64,
    home: Weak<Inner>,
    cache: Arc<ThreadCache>,
}

/// The calling thread's caches, one entry per open region it has touched.
/// Dropping this (at thread exit) flushes every cache back to its region —
/// the "thread-exit hook" that bounds what an exiting thread can strand.
struct TlsCaches {
    entries: Vec<TlsEntry>,
}

impl Drop for TlsCaches {
    fn drop(&mut self) {
        for e in self.entries.drain(..) {
            if let Some(home) = e.home.upgrade() {
                home.retire_thread_cache(&e.cache);
            }
        }
    }
}

thread_local! {
    static CACHES: RefCell<TlsCaches> = const { RefCell::new(TlsCaches { entries: Vec::new() }) };
}

/// Runs `f` with the calling thread's cache for `inner`, creating and
/// registering the cache on first touch. Returns `None` when thread-local
/// storage is unavailable (thread teardown) — callers fall back to the
/// locked slow path.
pub(crate) fn with_cache<R>(inner: &Arc<Inner>, f: impl FnOnce(&ThreadCache) -> R) -> Option<R> {
    CACHES
        .try_with(|tls| {
            let mut tls = tls.borrow_mut();
            let instance = inner.instance();
            if let Some(e) = tls.entries.iter().find(|e| e.instance == instance) {
                return f(&e.cache);
            }
            // First touch of this region by this thread: register the new
            // cache with the region (for close-time drain, statistics
            // aggregation, and OOM reclaim) and drop entries of
            // since-closed regions while we're here.
            let cache = Arc::new(ThreadCache::default());
            inner.register_cache(cache.clone());
            tls.entries.retain(|e| e.home.strong_count() > 0);
            tls.entries.push(TlsEntry {
                instance,
                home: Arc::downgrade(inner),
                cache,
            });
            f(&tls.entries.last().expect("just pushed").cache)
        })
        .ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_is_lifo_and_empty_safe() {
        let mut c = CacheInner::default();
        assert_eq!(c.take(0), None);
        c.stock(0, &[16, 32, 48]);
        assert_eq!(c.take(0), Some(48));
        assert_eq!(c.take(0), Some(32));
        assert_eq!(c.take(0), Some(16));
        assert_eq!(c.take(0), None);
    }

    #[test]
    fn classes_are_independent() {
        let mut c = CacheInner::default();
        assert!(c.put(0, 16).is_none());
        assert!(c.put(5, 96).is_none());
        assert_eq!(c.take(5), Some(96));
        assert_eq!(c.take(0), Some(16));
    }

    #[test]
    fn overflow_returns_cold_half() {
        let mut c = CacheInner::default();
        for i in 0..MAGAZINE_CAP {
            assert!(c.put(3, (i * 16) as u64).is_none(), "below cap");
        }
        let cold = c.put(3, (MAGAZINE_CAP * 16) as u64).expect("over cap");
        assert_eq!(cold.len(), MAGAZINE_CAP / 2);
        // The overflow is the *oldest* half; the hottest block remains.
        assert_eq!(cold[0], 0);
        assert_eq!(c.take(3), Some((MAGAZINE_CAP * 16) as u64));
        assert_eq!(
            c.stats.cached_blocks,
            (MAGAZINE_CAP + 1 - MAGAZINE_CAP / 2 - 1) as u64
        );
    }

    #[test]
    fn drain_empties_the_magazine_and_its_accounting() {
        let mut c = CacheInner::default();
        c.stock(2, &[16, 32]);
        assert_eq!(c.drain_class(2), vec![16, 32]);
        assert_eq!(c.take(2), None);
        assert!(c.drain_class(2).is_empty());
        assert_eq!(c.stats.cached_blocks, 0);
        assert_eq!(c.stats.cached_bytes, 0);
    }

    #[test]
    fn stats_shard_balances_over_a_churn_cycle() {
        let mut c = CacheInner::default();
        let bsize = CLASS_SIZES[4] as i64;
        c.stock(4, &[96, 192]); // refill: 1 served live + 2 cached
        assert_eq!(c.stats.live_allocs, 1);
        assert_eq!(c.stats.cached_blocks, 2);
        let off = c.take(4).unwrap();
        assert!(c.put(4, off).is_none());
        assert_eq!(c.stats.live_allocs, 1, "one refill-served block still out");
        assert_eq!(c.stats.live_bytes, bsize);
        assert_eq!(c.stats.alloc_calls, 2);
        assert_eq!(c.stats.free_calls, 1);
        assert_eq!(c.stats.cached_blocks, 2);
    }
}
