//! Offline inspection of region images.
//!
//! Reads a `.nvr` file *without mapping it into the NV space* and reports
//! what a maintainer wants to know before trusting an image: header
//! validity, region id, size, clean/dirty state, the root directory, and
//! allocator statistics. Used by the `nvr-inspect` binary and by tests.

use crate::alloc::{CLASS_SIZES, NUM_CLASSES};
use crate::error::{NvError, Result};
use crate::llalloc::{self, ClassOccupancy};
use crate::region::{HEADER_VERSION, MAX_ROOTS, REGION_MAGIC, ROOT_NAME_CAP};
use crate::shadow::FaultStamp;
use std::fmt;
use std::path::Path;

/// A root-directory entry as found in an image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RootInfo {
    /// Root name.
    pub name: String,
    /// Offset of the root target within the region.
    pub offset: u64,
    /// Application type tag (0 = untagged).
    pub type_tag: u64,
}

/// State of a `pstore` undo-log head as found in an image (via the
/// `"pstore.meta"` root).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogInfo {
    /// Offset of the undo-log area within the region.
    pub log_off: u64,
    /// Capacity of the log area in bytes.
    pub log_cap: u64,
    /// Bytes of entries currently in the log (nonzero on a dirty image
    /// means recovery will roll back on the next attach).
    pub used: u64,
    /// Entries counted by a bounded, validated scan of the log.
    pub entries: u64,
    /// Of the scanned entries, how many fail their CRC-64 (recovery will
    /// skip these).
    pub bad_entries: u64,
    /// Whether the scan stopped early on a malformed entry (torn or
    /// corrupted log bytes).
    pub truncated_scan: bool,
}

/// Everything [`inspect`] learns about an image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ImageReport {
    /// Region ID recorded in the header.
    pub rid: u32,
    /// On-media format version.
    pub version: u32,
    /// Region size in bytes (equals the file length for valid images).
    pub size: u64,
    /// Reserved capacity in bytes — the growth ceiling the region's chunk
    /// run covers. Equals `size` for regions created without headroom.
    pub capacity: u64,
    /// Whether the image was cleanly closed (false = crash; recovery will
    /// run on next open if a store log is present).
    pub clean: bool,
    /// Application-defined header tag.
    pub user_tag: u64,
    /// Root directory entries.
    pub roots: Vec<RootInfo>,
    /// Offset of the allocation frontier.
    pub bump: u64,
    /// Bytes handed out and not freed.
    pub live_bytes: u64,
    /// Number of live allocations.
    pub live_allocs: u64,
    /// The fault stamp of the last injected crash, if the image carries
    /// one (see [`crate::shadow`]).
    pub fault: Option<FaultStamp>,
    /// Undo-log head state, if the image holds a `pstore` store.
    pub log: Option<LogInfo>,
}

impl fmt::Display for ImageReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "region id:    {}", self.rid)?;
        writeln!(f, "format:       v{}", self.version)?;
        writeln!(f, "size:         {} bytes", self.size)?;
        let chunk = crate::layout::Layout::DEFAULT.chunk_size() as u64;
        writeln!(
            f,
            "capacity:     {} bytes ({} chunk{} of {} under the default layout, {} bytes of growth headroom)",
            self.capacity,
            self.capacity.div_ceil(chunk).max(1),
            if self.capacity.div_ceil(chunk).max(1) == 1 { "" } else { "s" },
            chunk,
            self.capacity.saturating_sub(self.size),
        )?;
        writeln!(
            f,
            "state:        {}",
            if self.clean {
                "clean"
            } else {
                "DIRTY (crashed)"
            }
        )?;
        writeln!(f, "user tag:     {:#x}", self.user_tag)?;
        writeln!(
            f,
            "allocator:    {} live allocs, {} live bytes, bump at {:#x} ({}% of region)",
            self.live_allocs,
            self.live_bytes,
            self.bump,
            self.bump * 100 / self.size.max(1)
        )?;
        match &self.fault {
            Some(s) => {
                let policy = match s.mode {
                    1 => "drop-unflushed",
                    2 => "tear-words",
                    3 => "bit-rot",
                    _ => "unknown",
                };
                writeln!(
                    f,
                    "last fault:   {policy} at event {} (seed {:#x}): {} lines dropped, {} torn ({} words), {} rotted ({} bits)",
                    s.event, s.seed, s.dropped_lines, s.torn_lines, s.torn_words,
                    s.rotted_lines, s.flipped_bits
                )?;
            }
            None => writeln!(f, "last fault:   none")?,
        }
        if let Some(log) = &self.log {
            writeln!(
                f,
                "undo log:     {} bytes used of {} at {:#x}, {} entries{}{}{}",
                log.used,
                log.log_cap,
                log.log_off,
                log.entries,
                if log.bad_entries != 0 {
                    format!(" ({} fail their CRC)", log.bad_entries)
                } else {
                    String::new()
                },
                if log.truncated_scan {
                    " (scan stopped on malformed entry)"
                } else {
                    ""
                },
                if log.used != 0 && !self.clean {
                    " — recovery pending"
                } else {
                    ""
                },
            )?;
        }
        writeln!(f, "roots:        {}", self.roots.len())?;
        for r in &self.roots {
            let tag = if r.type_tag == 0 {
                String::from("untyped")
            } else {
                match std::str::from_utf8(&r.type_tag.to_le_bytes()) {
                    Ok(s) if s.bytes().all(|b| b.is_ascii_graphic()) => format!("tag {s:?}"),
                    _ => format!("tag {:#x}", r.type_tag),
                }
            };
            writeln!(f, "  {:<24} @ {:#010x}  ({tag})", r.name, r.offset)?;
        }
        Ok(())
    }
}

fn read_u32(b: &[u8], off: usize) -> u32 {
    u32::from_le_bytes(b[off..off + 4].try_into().unwrap())
}

fn read_u64(b: &[u8], off: usize) -> u64 {
    u64::from_le_bytes(b[off..off + 8].try_into().unwrap())
}

/// Byte offsets of `RegionHeader` fields (repr(C), see `region.rs`).
mod offsets {
    pub const MAGIC: usize = 0;
    pub const VERSION: usize = 8;
    pub const RID: usize = 12;
    pub const SIZE: usize = 16;
    pub const FLAGS: usize = 24;
    pub const USER_TAG: usize = 32;
    pub const CAPACITY: usize = 40;
    pub const ROOTS: usize = 48;
    pub const ROOT_ENTRY_SIZE: usize = 48; // 32 name + 8 offset + 8 tag
    pub const ROOT_OFFSET_IN_ENTRY: usize = 32;
    pub const ROOT_TAG_IN_ENTRY: usize = 40;
    // AllocHeader follows the root array.
    pub const ALLOC_BUMP_REL: usize = 0;
    // Field order: bump, end, free_heads, large_head, 4 stat counters,
    // ll_dir (the llalloc bitmap-page directory).
    pub const ALLOC_LIVE_BYTES_REL: usize = 8 + 8 + 16 * 8 + 8;
    pub const ALLOC_LL_DIR_REL: usize = 8 + 8 + 16 * 8 + 8 + 4 * 8;
    pub const ALLOC_SIZE: usize = 8 + 8 + 16 * 8 + 8 + 4 * 8 + 8;
    // FaultStamp is the last header field, right after the allocator.
    pub const FAULT: usize = ROOTS + 16 * ROOT_ENTRY_SIZE + ALLOC_SIZE;
}

/// One `llalloc` subtree descriptor as found in an image.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubtreeInfo {
    /// Offset of block 0 of the subtree's span.
    pub base: u64,
    /// Block size in bytes (the size class).
    pub class_size: usize,
    /// Blocks the subtree covers (≤ 64).
    pub capacity: u32,
    /// Allocated blocks (bitmap popcount — the persistent truth).
    pub allocated: u32,
    /// The advisory free counter as persisted. May lag the bitmap on a
    /// crashed image; the recovery scan rebuilds it on open.
    pub free_counter: u64,
}

/// Everything [`inspect_llalloc_bytes`] learns about an image's
/// two-level bitmap allocator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LlallocReport {
    /// Bitmap pages in the directory chain.
    pub pages: u64,
    /// Every subtree descriptor, in directory order.
    pub subtrees: Vec<SubtreeInfo>,
    /// Occupancy summed per size class.
    pub per_class: [ClassOccupancy; NUM_CLASSES],
    /// Structural inconsistencies (bad magic, class, span, padding,
    /// chain cycle). Nonempty means an open would degrade to the legacy
    /// allocator.
    pub issues: Vec<String>,
    /// Descriptors whose advisory free counter disagrees with
    /// `capacity - popcount(bitmap)`. Expected on crashed images
    /// (counters are advisory and rebuilt on open); on a clean image it
    /// indicates rot.
    pub stale_counters: u64,
}

impl LlallocReport {
    /// Whether the bitmap structures are internally consistent. `strict`
    /// additionally requires every advisory counter to match its bitmap
    /// (the state a clean close seals).
    pub fn consistent(&self, strict: bool) -> bool {
        self.issues.is_empty() && (!strict || self.stale_counters == 0)
    }
}

impl fmt::Display for LlallocReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "bitmap pages: {} ({} subtrees)",
            self.pages,
            self.subtrees.len()
        )?;
        for (class, o) in self.per_class.iter().enumerate() {
            if o.subtrees == 0 {
                continue;
            }
            writeln!(
                f,
                "  class {:>5}: {:>3} subtrees, {:>5}/{:<5} blocks allocated, free counters {}",
                CLASS_SIZES[class], o.subtrees, o.allocated, o.capacity, o.free_counter
            )?;
        }
        if self.stale_counters != 0 {
            writeln!(
                f,
                "  {} stale free counter(s) (rebuilt on next open)",
                self.stale_counters
            )?;
        }
        for issue in &self.issues {
            writeln!(f, "  ISSUE: {issue}")?;
        }
        Ok(())
    }
}

/// Walks an image's `llalloc` bitmap-page chain offline (no mapping, no
/// mutation) and reports per-class and per-subtree occupancy. Returns
/// `Ok(None)` for legacy images without a bitmap directory. Structural
/// damage is collected into [`LlallocReport::issues`] rather than
/// aborting the walk, so a partially-rotted directory still dumps what
/// it can.
///
/// # Errors
///
/// [`NvError::BadImage`] when `bytes` is not a region image at all.
pub fn inspect_llalloc_bytes(bytes: &[u8]) -> Result<Option<LlallocReport>> {
    use offsets::*;
    // Reuse the identity validation of the main parser.
    let _ = inspect_bytes(bytes)?;
    let alloc = ROOTS + MAX_ROOTS * ROOT_ENTRY_SIZE;
    let ll_dir = read_u64(bytes, alloc + ALLOC_LL_DIR_REL);
    if ll_dir == 0 {
        return Ok(None);
    }
    let mut report = LlallocReport {
        pages: 0,
        subtrees: Vec::new(),
        per_class: [ClassOccupancy::default(); NUM_CLASSES],
        issues: Vec::new(),
        stale_counters: 0,
    };
    let max_pages = bytes.len() / llalloc::LL_PAGE_SIZE + 1;
    let mut page_off = ll_dir;
    while page_off != 0 {
        if report.pages as usize >= max_pages {
            report.issues.push("bitmap page chain cycle".to_string());
            break;
        }
        if !page_off.is_multiple_of(64) || page_off as usize + llalloc::LL_PAGE_SIZE > bytes.len() {
            report
                .issues
                .push(format!("bitmap page offset {page_off:#x} out of bounds"));
            break;
        }
        let p = page_off as usize;
        if read_u64(bytes, p + llalloc::PAGE_MAGIC) != llalloc::LL_PAGE_MAGIC {
            report
                .issues
                .push(format!("bitmap page at {page_off:#x} has a bad magic"));
            break;
        }
        report.pages += 1;
        let count = read_u64(bytes, p + llalloc::PAGE_COUNT);
        if count > llalloc::SUBTREES_PER_PAGE as u64 {
            report.issues.push(format!(
                "bitmap page at {page_off:#x} claims {count} descriptors"
            ));
            break;
        }
        for slot in 0..count as usize {
            let d = p + llalloc::DESC_SIZE + slot * llalloc::DESC_SIZE;
            let meta = read_u64(bytes, d + llalloc::D_META);
            let class = (meta & 0xff) as usize;
            let cap = ((meta >> 8) & 0xff) as u32;
            if class >= NUM_CLASSES || cap == 0 || cap as usize > llalloc::BLOCKS_PER_SUBTREE {
                report.issues.push(format!(
                    "descriptor {slot}@{page_off:#x}: bad class/capacity"
                ));
                continue;
            }
            let base = read_u64(bytes, d + llalloc::D_BASE);
            let span = cap as u64 * CLASS_SIZES[class] as u64;
            if !base.is_multiple_of(llalloc::GRANULE)
                || base
                    .checked_add(span)
                    .is_none_or(|e| e > bytes.len() as u64)
            {
                report.issues.push(format!(
                    "descriptor {slot}@{page_off:#x}: span out of bounds"
                ));
                continue;
            }
            let bm = read_u64(bytes, d + llalloc::D_BITMAP);
            let mask = if cap >= 64 { !0u64 } else { (1u64 << cap) - 1 };
            if bm & !mask != !mask {
                report.issues.push(format!(
                    "descriptor {slot}@{page_off:#x}: padding bits corrupt"
                ));
                continue;
            }
            let free = read_u64(bytes, d + llalloc::D_FREE);
            let allocated = (bm & mask).count_ones();
            if free != cap as u64 - allocated as u64 {
                report.stale_counters += 1;
            }
            report.subtrees.push(SubtreeInfo {
                base,
                class_size: CLASS_SIZES[class],
                capacity: cap,
                allocated,
                free_counter: free,
            });
            let o = &mut report.per_class[class];
            o.subtrees += 1;
            o.capacity += cap as u64;
            o.allocated += allocated as u64;
            o.free_counter += free;
        }
        page_off = read_u64(bytes, p + llalloc::PAGE_NEXT);
    }
    Ok(Some(report))
}

/// [`inspect_llalloc_bytes`] over an image file.
///
/// # Errors
///
/// As [`inspect_llalloc_bytes`], plus I/O errors.
pub fn inspect_llalloc<P: AsRef<Path>>(path: P) -> Result<Option<LlallocReport>> {
    let bytes = std::fs::read(path.as_ref())?;
    inspect_llalloc_bytes(&bytes)
}

/// Reads the `pstore` undo-log head through the `"pstore.meta"` root, if
/// present and sane. The entry scan is bounded and validated so torn or
/// corrupted log bytes cannot run the parser out of the image.
fn peek_log(bytes: &[u8], roots: &[RootInfo]) -> Option<LogInfo> {
    const PSTORE_MAGIC: u64 = u64::from_le_bytes(*b"PSTOREV1");
    const LOG_HEADER: u64 = 16;
    // Entry header: { off, len, crc64, reserved } — see `pstore::log`.
    const ENTRY_HEADER: u64 = 32;
    let meta_off = roots.iter().find(|r| r.name == "pstore.meta")?.offset as usize;
    if meta_off.checked_add(40)? > bytes.len() {
        return None;
    }
    if read_u64(bytes, meta_off) != PSTORE_MAGIC {
        return None;
    }
    let log_off = read_u64(bytes, meta_off + 24);
    let log_cap = read_u64(bytes, meta_off + 32);
    let log_end = log_off.checked_add(log_cap)?;
    if log_off < LOG_HEADER || log_end > bytes.len() as u64 {
        return None;
    }
    let used = read_u64(bytes, log_off as usize);
    let mut entries = 0u64;
    let mut bad_entries = 0u64;
    let mut truncated_scan = false;
    if LOG_HEADER + used > log_cap {
        // `used` itself is implausible (torn?): report it, scan nothing.
        truncated_scan = true;
    } else {
        let mut pos = 0u64;
        while pos + ENTRY_HEADER <= used {
            let entry = (log_off + LOG_HEADER + pos) as usize;
            let data_off = read_u64(bytes, entry);
            let len = read_u64(bytes, entry + 8);
            let crc = read_u64(bytes, entry + 16);
            let span = ENTRY_HEADER + ((len + 15) & !15);
            let in_bounds = pos.checked_add(span).is_some_and(|end| end <= used)
                && data_off
                    .checked_add(len)
                    .is_some_and(|end| end <= bytes.len() as u64);
            if !in_bounds {
                truncated_scan = true;
                break;
            }
            let mut state = crate::crc::crc64_update(!0, &data_off.to_le_bytes());
            state = crate::crc::crc64_update(state, &len.to_le_bytes());
            state = crate::crc::crc64_update(
                state,
                &bytes[entry + ENTRY_HEADER as usize..entry + ENTRY_HEADER as usize + len as usize],
            );
            if state ^ !0 != crc {
                bad_entries += 1;
            }
            entries += 1;
            pos += span;
        }
    }
    Some(LogInfo {
        log_off,
        log_cap,
        used,
        entries,
        bad_entries,
        truncated_scan,
    })
}

/// Parses and validates a region image file without opening it as a
/// region.
///
/// # Errors
///
/// [`NvError::BadImage`] for invalid/truncated images, [`NvError::Io`] on
/// read failures.
pub fn inspect<P: AsRef<Path>>(path: P) -> Result<ImageReport> {
    let bytes = std::fs::read(path.as_ref())?;
    inspect_bytes(&bytes)
}

/// [`inspect`] over in-memory image bytes.
///
/// # Errors
///
/// As [`inspect`].
pub fn inspect_bytes(bytes: &[u8]) -> Result<ImageReport> {
    use offsets::*;
    let min = ROOTS + MAX_ROOTS * ROOT_ENTRY_SIZE + 256;
    if bytes.len() < min {
        return Err(NvError::BadImage(format!(
            "file of {} bytes is too small for a region header",
            bytes.len()
        )));
    }
    if read_u64(bytes, MAGIC) != REGION_MAGIC {
        return Err(NvError::BadImage(format!(
            "bad magic {:#x}",
            read_u64(bytes, MAGIC)
        )));
    }
    let version = read_u32(bytes, VERSION);
    if version != HEADER_VERSION {
        return Err(NvError::BadImage(format!("unsupported version {version}")));
    }
    let size = read_u64(bytes, SIZE);
    if size != bytes.len() as u64 {
        return Err(NvError::BadImage(format!(
            "header size {size} != file length {}",
            bytes.len()
        )));
    }
    let mut roots = Vec::new();
    for i in 0..MAX_ROOTS {
        let entry = ROOTS + i * ROOT_ENTRY_SIZE;
        let name_bytes = &bytes[entry..entry + ROOT_NAME_CAP + 1];
        if name_bytes[0] == 0 {
            continue;
        }
        let len = name_bytes
            .iter()
            .position(|&b| b == 0)
            .unwrap_or(name_bytes.len());
        roots.push(RootInfo {
            name: String::from_utf8_lossy(&name_bytes[..len]).into_owned(),
            offset: read_u64(bytes, entry + ROOT_OFFSET_IN_ENTRY),
            type_tag: read_u64(bytes, entry + ROOT_TAG_IN_ENTRY),
        });
    }
    let alloc = ROOTS + MAX_ROOTS * ROOT_ENTRY_SIZE;
    let fault = FaultStamp::parse(&bytes[FAULT..]);
    let log = peek_log(bytes, &roots);
    Ok(ImageReport {
        rid: read_u32(bytes, RID),
        version,
        size,
        capacity: read_u64(bytes, CAPACITY),
        clean: read_u64(bytes, FLAGS) & 1 == 0,
        user_tag: read_u64(bytes, USER_TAG),
        roots,
        bump: read_u64(bytes, alloc + ALLOC_BUMP_REL),
        live_bytes: read_u64(bytes, alloc + ALLOC_LIVE_BYTES_REL),
        live_allocs: read_u64(bytes, alloc + ALLOC_LIVE_BYTES_REL + 8),
        fault,
        log,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::region::Region;

    #[test]
    fn field_offsets_match_the_real_header() {
        // Guard against silent layout drift between RegionHeader and the
        // offline parser: build a real region and cross-check every field.
        let dir = std::env::temp_dir().join(format!("nvm-inspect-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("img.nvr");
        let (rid, live, capacity);
        {
            let r = Region::create_file(&path, 1 << 20).unwrap();
            rid = r.rid();
            capacity = r.capacity() as u64;
            let a = r.alloc(100, 8).unwrap();
            let _b = r.alloc(200, 8).unwrap();
            r.set_root_tagged(
                "alpha",
                a.as_ptr() as usize,
                u64::from_le_bytes(*b"TAGALPHA"),
            )
            .unwrap();
            r.set_user_tag(0xDEAD_BEEF);
            live = r.stats().live_allocs;
            r.close().unwrap();
        }
        let report = inspect(&path).unwrap();
        assert_eq!(report.rid, rid);
        assert_eq!(report.version, HEADER_VERSION);
        assert_eq!(report.size, 1 << 20);
        assert_eq!(
            report.capacity, capacity,
            "offline CAPACITY offset drifted from RegionHeader"
        );
        assert!(report.capacity >= report.size);
        assert!(report.clean);
        assert_eq!(report.user_tag, 0xDEAD_BEEF);
        assert_eq!(report.live_allocs, live);
        assert!(report.live_bytes >= 300);
        assert_eq!(report.roots.len(), 1);
        assert_eq!(report.roots[0].name, "alpha");
        assert_eq!(report.roots[0].type_tag, u64::from_le_bytes(*b"TAGALPHA"));
        assert!(report.bump > 0);
        assert_eq!(
            crate::region::RegionHeader::fault_stamp_offset() as usize,
            offsets::FAULT,
            "offline FAULT offset drifted from RegionHeader"
        );
        assert!(report.fault.is_none(), "clean image carries no fault stamp");
        assert!(report.log.is_none(), "no pstore.meta root, no log info");
        let shown = report.to_string();
        assert!(shown.contains("alpha") && shown.contains("clean"));
        assert!(shown.contains("last fault:   none"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn llalloc_walk_reports_occupancy_and_staleness() {
        let dir = std::env::temp_dir().join(format!("nvm-inspect-ll-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ll.nvr");
        {
            let r = Region::create_file(&path, 1 << 20).unwrap();
            let ptrs: Vec<_> = (0..10).map(|_| r.alloc(64, 8).unwrap()).collect();
            for p in &ptrs[..4] {
                unsafe { r.dealloc(*p, 64) };
            }
            r.close().unwrap();
        }
        let report = inspect_llalloc(&path)
            .unwrap()
            .expect("v2 image has bitmaps");
        assert!(report.pages >= 1);
        let class = crate::alloc::class_for(64).unwrap();
        assert_eq!(report.per_class[class].allocated, 6);
        assert!(report.per_class[class].capacity >= 10);
        assert!(
            report.consistent(true),
            "clean close seals exact free counters: {report}"
        );
        // Corrupt a descriptor's class byte: the walk flags it instead
        // of panicking or running out of the image.
        let mut bytes = std::fs::read(&path).unwrap();
        let alloc = offsets::ROOTS + MAX_ROOTS * offsets::ROOT_ENTRY_SIZE;
        let ll_dir = read_u64(&bytes, alloc + offsets::ALLOC_LL_DIR_REL) as usize;
        bytes[ll_dir + llalloc::DESC_SIZE + llalloc::D_META] = 0xff;
        let damaged = inspect_llalloc_bytes(&bytes).unwrap().unwrap();
        assert!(!damaged.consistent(false));
        assert!(damaged.to_string().contains("ISSUE"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn dirty_images_are_reported_dirty() {
        let dir = std::env::temp_dir().join(format!("nvm-inspect-d-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("crash.nvr");
        {
            let r = Region::create_file(&path, 1 << 20).unwrap();
            r.sync().unwrap();
            r.crash();
        }
        let report = inspect(&path).unwrap();
        assert!(!report.clean);
        assert!(report.to_string().contains("DIRTY"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn garbage_is_rejected() {
        assert!(matches!(
            inspect_bytes(&[0u8; 64]),
            Err(NvError::BadImage(_))
        ));
        let mut big = vec![0u8; 1 << 16];
        assert!(matches!(inspect_bytes(&big), Err(NvError::BadImage(_))));
        // Right magic, wrong size field.
        big[..8].copy_from_slice(&REGION_MAGIC.to_le_bytes());
        big[8..12].copy_from_slice(&HEADER_VERSION.to_le_bytes());
        big[16..24].copy_from_slice(&999u64.to_le_bytes());
        assert!(matches!(inspect_bytes(&big), Err(NvError::BadImage(_))));
    }
}
