//! Shadow tracking of cache-line persistence state, and fault injection.
//!
//! The simulator's mapped memory silently "persists" every store: a crash
//! ([`crate::Region::crash`]) tears the mapping down without discarding
//! written-but-unflushed data, so a missing `clflush_range`/`wbarrier` in a
//! persistence protocol is invisible to ordinary crash tests. This module
//! closes that gap with a *shadow memory* that mirrors what real hardware
//! would have made durable:
//!
//! * every instrumented store ([`track_store`]) marks its cache lines
//!   **dirty**;
//! * [`crate::latency::clflush_range`] moves covered dirty lines to
//!   **flushed-pending-fence**, staging the line's bytes at flush time;
//! * [`crate::latency::wbarrier`] commits pending lines into the
//!   **persisted** shadow image and marks them **clean**.
//!
//! A line re-dirtied after a flush but before the fence loses its staged
//! bytes — the model is deliberately conservative (ADR-style: nothing is
//! durable until an explicit flush *and* fence complete). Stores that are
//! never tracked (allocator internals, root-directory updates, anything
//! outside the protocol under test) keep the simulator's historical
//! behaviour of persisting silently; only instrumented protocols
//! participate in fault injection.
//!
//! On top of the tracker sit two fault-injection facilities:
//!
//! * [`capture_crash_image`] / [`crate::Region::crash_with_faults`]
//!   materialize a crash image where every non-clean line is **dropped**
//!   (reverted to its last-persisted bytes) or **torn** (each 8-byte word
//!   independently keeps either the old or the new value, decided by a
//!   seeded deterministic hash) — [`FaultPolicy`];
//! * [`FaultPlan`] is a deterministic crash-point scheduler: flushes and
//!   fences are numbered as *events*, and a plan captures a faulted image
//!   at the n-th event ([`FaultPlan::crash_at_nth_event`]), aborts the run
//!   there ([`FaultPlan::abort_at_nth_event`]), or captures at *every*
//!   event ([`FaultPlan::capture_all`]) so a harness can enumerate all
//!   crash points of a workload in one pass.
//!
//! Injected images carry a [`FaultStamp`] in the region header recording
//! what was done to them, which `nvr_inspect` reports.

use crate::region::Region;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Cache-line size assumed by the tracker (matches `clflush_range`).
pub const SHADOW_LINE: usize = 64;

/// Typed failure of a shadow-tracker query that names a region by its
/// base address.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShadowError {
    /// A region is mapped at `base` but [`crate::Region::enable_shadow`]
    /// was never called on it.
    ShadowNotEnabled {
        /// Base address of the untracked region.
        base: usize,
    },
    /// No open region is mapped at `base` at all.
    RegionUnknown {
        /// The offending base address.
        base: usize,
    },
}

impl std::fmt::Display for ShadowError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShadowError::ShadowNotEnabled { base } => {
                write!(f, "shadow tracking not enabled for region at {base:#x}")
            }
            ShadowError::RegionUnknown { base } => {
                write!(f, "no open region mapped at {base:#x}")
            }
        }
    }
}

impl std::error::Error for ShadowError {}

impl From<ShadowError> for crate::NvError {
    fn from(e: ShadowError) -> crate::NvError {
        match e {
            ShadowError::ShadowNotEnabled { base } => crate::NvError::ShadowNotEnabled { base },
            ShadowError::RegionUnknown { base } => crate::NvError::RegionUnknown { base },
        }
    }
}

/// Classifies why `base` has no tracker: known-but-untracked region vs.
/// no region at all.
fn not_tracked(base: usize) -> ShadowError {
    if crate::registry::open_regions()
        .iter()
        .any(|r| r.base == base)
    {
        ShadowError::ShadowNotEnabled { base }
    } else {
        ShadowError::RegionUnknown { base }
    }
}

/// Magic identifying a valid [`FaultStamp`] in a region header
/// (`"NVPIFLT1"`).
pub const FAULT_STAMP_MAGIC: u64 = u64::from_le_bytes(*b"NVPIFLT1");

/// How unpersisted cache lines are mangled when a crash image is taken.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultPolicy {
    /// Every dirty or flushed-pending-fence line reverts entirely to its
    /// last-persisted contents (the store never reached the device).
    DropUnflushed,
    /// Every dirty or flushed-pending-fence line is torn at 8-byte-word
    /// granularity: each word independently keeps the old or new value,
    /// decided by a deterministic hash of `seed`, so runs reproduce.
    TearWords {
        /// Seed for the per-word keep/revert decision.
        seed: u64,
    },
    /// Media decay rather than a persistence-protocol failure: every
    /// store persists (even unflushed ones, like the silent-persist
    /// baseline), then 1–3 bits are flipped in each of `lines`
    /// deterministically chosen cache lines of the image — anywhere,
    /// including header and metadata-slot lines. Composable with the
    /// [`FaultPlan`] scheduler like any other policy.
    BitRot {
        /// Number of distinct cache lines to corrupt (clamped to the
        /// image's line count).
        lines: u32,
        /// Seed for the line/bit choices, so runs reproduce.
        seed: u64,
    },
}

impl FaultPolicy {
    fn mode(&self) -> u64 {
        match self {
            FaultPolicy::DropUnflushed => 1,
            FaultPolicy::TearWords { .. } => 2,
            FaultPolicy::BitRot { .. } => 3,
        }
    }

    fn seed(&self) -> u64 {
        match self {
            FaultPolicy::DropUnflushed => 0,
            FaultPolicy::TearWords { seed } => *seed,
            FaultPolicy::BitRot { seed, .. } => *seed,
        }
    }
}

/// What a fault-injected crash actually did to the image.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultReport {
    /// The event number at which the image was captured (0 when the image
    /// was taken outside a [`FaultPlan`]).
    pub event: u64,
    /// Policy discriminant: 1 = drop, 2 = tear.
    pub mode: u64,
    /// The tear seed (0 for drop).
    pub seed: u64,
    /// Lines fully reverted to their last-persisted bytes.
    pub dropped_lines: u64,
    /// Lines where some words reverted and some survived.
    pub torn_lines: u64,
    /// Total 8-byte words reverted inside torn lines.
    pub torn_words: u64,
    /// Cache lines hit by bit-rot (BitRot policy only).
    pub rotted_lines: u64,
    /// Total bits flipped across rotted lines.
    pub flipped_bits: u64,
}

/// On-media record of the last injected crash, stored in the region
/// header. All-zero (in particular `magic == 0`) when no fault was ever
/// injected.
#[repr(C)]
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStamp {
    /// [`FAULT_STAMP_MAGIC`] when the stamp is valid.
    pub magic: u64,
    /// Policy discriminant: 0 = none, 1 = drop, 2 = tear.
    pub mode: u64,
    /// The tear seed (0 for drop).
    pub seed: u64,
    /// The event number of the captured crash point.
    pub event: u64,
    /// Lines fully reverted.
    pub dropped_lines: u64,
    /// Lines partially reverted.
    pub torn_lines: u64,
    /// Words reverted inside torn lines.
    pub torn_words: u64,
    /// Cache lines hit by bit-rot.
    pub rotted_lines: u64,
    /// Bits flipped across rotted lines.
    pub flipped_bits: u64,
}

impl FaultStamp {
    /// Builds the stamp persisted into an injected image.
    pub fn from_report(r: &FaultReport) -> FaultStamp {
        FaultStamp {
            magic: FAULT_STAMP_MAGIC,
            mode: r.mode,
            seed: r.seed,
            event: r.event,
            dropped_lines: r.dropped_lines,
            torn_lines: r.torn_lines,
            torn_words: r.torn_words,
            rotted_lines: r.rotted_lines,
            flipped_bits: r.flipped_bits,
        }
    }

    /// Parses a stamp from raw header bytes (little-endian u64 fields).
    /// Returns `None` unless the magic matches.
    pub fn parse(bytes: &[u8]) -> Option<FaultStamp> {
        if bytes.len() < std::mem::size_of::<FaultStamp>() {
            return None;
        }
        let word = |i: usize| u64::from_le_bytes(bytes[i * 8..i * 8 + 8].try_into().unwrap());
        if word(0) != FAULT_STAMP_MAGIC {
            return None;
        }
        Some(FaultStamp {
            magic: word(0),
            mode: word(1),
            seed: word(2),
            event: word(3),
            dropped_lines: word(4),
            torn_lines: word(5),
            torn_words: word(6),
            rotted_lines: word(7),
            flipped_bits: word(8),
        })
    }

    fn write_to(&self, out: &mut [u8]) {
        for (i, v) in [
            self.magic,
            self.mode,
            self.seed,
            self.event,
            self.dropped_lines,
            self.torn_lines,
            self.torn_words,
            self.rotted_lines,
            self.flipped_bits,
        ]
        .into_iter()
        .enumerate()
        {
            out[i * 8..i * 8 + 8].copy_from_slice(&v.to_le_bytes());
        }
    }
}

/// Panic payload thrown by [`FaultPlan::abort_at_nth_event`] when the
/// scheduled crash point is reached. Harnesses catch it with
/// `std::panic::catch_unwind` and downcast.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashPointReached {
    /// The event number the run was aborted at.
    pub event: u64,
}

impl std::fmt::Display for CrashPointReached {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "simulated crash at persistence event {}", self.event)
    }
}

/// A crash image captured by a [`FaultPlan`].
pub struct CapturedCrash {
    /// The event number the image was captured at (the event itself has
    /// *not* taken effect in the image).
    pub event: u64,
    /// The full faulted region image, ready to be written to a file and
    /// reopened with [`crate::Region::open_file`].
    pub image: Vec<u8>,
    /// What the policy did to the image.
    pub report: FaultReport,
}

impl std::fmt::Debug for CapturedCrash {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CapturedCrash")
            .field("event", &self.event)
            .field("image_len", &self.image.len())
            .field("report", &self.report)
            .finish()
    }
}

const CLEAN: u8 = 0;
const DIRTY: u8 = 1;
const PENDING: u8 = 2;

#[derive(Debug)]
struct TrackState {
    /// Per-line persistence state (`CLEAN` / `DIRTY` / `PENDING`).
    lines: Vec<u8>,
    /// Bytes of each pending line as of its last flush.
    staged: HashMap<u32, [u8; SHADOW_LINE]>,
    /// Lines flushed since the last fence (may hold stale entries for
    /// lines re-dirtied in between; state decides at the fence).
    pending: Vec<u32>,
    /// The durable view: what the device would hold after a power cut.
    persisted: Vec<u8>,
    /// Per-line "durable bytes changed since the last replication
    /// capture" flags, maintained only while a [`crate::repl`] source is
    /// attached (`None` otherwise, keeping the hot path unchanged).
    repl_dirty: Option<Vec<bool>>,
}

#[derive(Debug)]
struct Tracker {
    rid: u32,
    base: usize,
    size: usize,
    stamp_off: usize,
    /// Persistence events (flushes of this region + fences) observed for
    /// this region, relative to the last [`reset_events_for`].
    events: AtomicU64,
    state: Mutex<TrackState>,
}

/// Cheap gate consulted by the latency hooks; true while any tracker is
/// registered.
static ENABLED: AtomicBool = AtomicBool::new(false);
/// Monotonic count of persistence events (flushes and fences) observed
/// while tracking is enabled.
static EVENTS: AtomicU64 = AtomicU64::new(0);
static TRACKERS: Mutex<Vec<Arc<Tracker>>> = Mutex::new(Vec::new());
static PLAN: Mutex<Option<PlanState>> = Mutex::new(None);

#[derive(Debug)]
enum PlanMode {
    CaptureAll,
    AtNth { at: u64, abort: bool },
}

#[derive(Debug)]
struct PlanState {
    base: usize,
    policy: FaultPolicy,
    mode: PlanMode,
    fired: bool,
    crashes: Vec<CapturedCrash>,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

fn tracker_covering(addr: usize) -> Option<Arc<Tracker>> {
    lock(&TRACKERS)
        .iter()
        .find(|t| addr >= t.base && addr < t.base + t.size)
        .cloned()
}

fn tracker_for_base(base: usize) -> Option<Arc<Tracker>> {
    lock(&TRACKERS).iter().find(|t| t.base == base).cloned()
}

/// Registers a tracker for `[base, base+size)` and checkpoints it (the
/// current memory contents count as persisted). Idempotent per base.
pub(crate) fn register(rid: u32, base: usize, size: usize, stamp_off: usize) {
    if tracker_for_base(base).is_some() {
        checkpoint(base);
        return;
    }
    let nlines = size.div_ceil(SHADOW_LINE);
    // SAFETY: the caller (Region) guarantees `[base, base+size)` is mapped.
    let persisted = unsafe { std::slice::from_raw_parts(base as *const u8, size) }.to_vec();
    let tracker = Arc::new(Tracker {
        rid,
        base,
        size,
        stamp_off,
        events: AtomicU64::new(0),
        state: Mutex::new(TrackState {
            lines: vec![CLEAN; nlines],
            staged: HashMap::new(),
            pending: Vec::new(),
            persisted,
            repl_dirty: None,
        }),
    });
    let mut trackers = lock(&TRACKERS);
    trackers.push(tracker);
    ENABLED.store(true, Ordering::Relaxed);
}

/// Removes the tracker of a region being torn down.
pub(crate) fn unregister_rid(rid: u32) {
    let mut trackers = lock(&TRACKERS);
    trackers.retain(|t| t.rid != rid);
    if trackers.is_empty() {
        ENABLED.store(false, Ordering::Relaxed);
    }
}

/// Whether a tracker is registered for the region mapped at `base`.
pub fn is_tracked(base: usize) -> bool {
    tracker_for_base(base).is_some()
}

/// Marks every line as clean and snapshots current memory as the
/// persisted view. Called after a full-image durability point
/// ([`crate::Region::sync`]).
pub(crate) fn checkpoint(base: usize) {
    let Some(t) = tracker_for_base(base) else {
        return;
    };
    let mut s = lock(&t.state);
    s.lines.fill(CLEAN);
    s.staged.clear();
    s.pending.clear();
    // SAFETY: the region is mapped while registered.
    let mem = unsafe { std::slice::from_raw_parts(t.base as *const u8, t.size) };
    let TrackState {
        persisted,
        repl_dirty,
        ..
    } = &mut *s;
    if let Some(dirty) = repl_dirty.as_mut() {
        // A checkpoint is the one durability point where *untracked*
        // stores become durable, so the replication dirty set must pick
        // up every line whose durable bytes change here.
        for (line, d) in dirty.iter_mut().enumerate() {
            let off = line * SHADOW_LINE;
            let end = (off + SHADOW_LINE).min(t.size);
            if persisted[off..end] != mem[off..end] {
                *d = true;
            }
        }
    }
    persisted.copy_from_slice(mem);
}

/// Whether a replication source is attached to the region at `base`
/// (its stream format pins the region size, so growth must be refused).
pub(crate) fn repl_attached(base: usize) -> bool {
    tracker_for_base(base).is_some_and(|t| lock(&t.state).repl_dirty.is_some())
}

/// Extends the tracker of the region at `base` to cover `new_size` bytes
/// after an in-place [`crate::Region::grow`]. The tracker's `size` is
/// immutable (the lock-free readers in `tracker_covering` rely on it), so
/// growth swaps in a replacement tracker carrying the old state: existing
/// line states, staged flushes, and the persisted prefix are preserved;
/// the new tail — freshly committed, zero-filled memory that is durable by
/// construction — joins as `CLEAN` with its bytes snapshotted as
/// persisted. A no-op when the region is untracked or not actually grown.
pub(crate) fn grow_region(base: usize, new_size: usize) {
    let mut trackers = lock(&TRACKERS);
    let Some(pos) = trackers.iter().position(|t| t.base == base) else {
        return;
    };
    let old = trackers[pos].clone();
    if new_size <= old.size {
        return;
    }
    let s = lock(&old.state);
    let nlines = new_size.div_ceil(SHADOW_LINE);
    let mut lines = s.lines.clone();
    lines.resize(nlines, CLEAN);
    let mut persisted = s.persisted.clone();
    // SAFETY: the caller (Region::grow) has committed `[base, base+new_size)`.
    let tail =
        unsafe { std::slice::from_raw_parts((base + old.size) as *const u8, new_size - old.size) };
    persisted.extend_from_slice(tail);
    let repl_dirty = s.repl_dirty.as_ref().map(|d| {
        let mut d = d.clone();
        d.resize(nlines, false);
        d
    });
    let replacement = Arc::new(Tracker {
        rid: old.rid,
        base,
        size: new_size,
        stamp_off: old.stamp_off,
        events: AtomicU64::new(old.events.load(Ordering::Relaxed)),
        state: Mutex::new(TrackState {
            lines,
            staged: s.staged.clone(),
            pending: s.pending.clone(),
            persisted,
            repl_dirty,
        }),
    });
    drop(s);
    trackers[pos] = replacement;
}

fn line_range(t: &Tracker, addr: usize, len: usize) -> std::ops::Range<usize> {
    let start = addr.max(t.base) - t.base;
    let end = (addr + len).min(t.base + t.size) - t.base;
    if start >= end {
        return 0..0;
    }
    (start / SHADOW_LINE)..((end - 1) / SHADOW_LINE + 1)
}

/// Records an instrumented store to `[addr, addr+len)`: the covered cache
/// lines become dirty (and lose any staged-but-unfenced flush). A no-op
/// unless tracking is enabled and `addr` falls in a tracked region.
#[inline]
pub fn track_store(addr: usize, len: usize) {
    if len == 0 || !ENABLED.load(Ordering::Relaxed) {
        return;
    }
    let Some(t) = tracker_covering(addr) else {
        return;
    };
    let mut s = lock(&t.state);
    for line in line_range(&t, addr, len) {
        if s.lines[line] == PENDING {
            s.staged.remove(&(line as u32));
        }
        s.lines[line] = DIRTY;
    }
}

/// Flush hook (called from [`crate::latency::clflush_range`]): dirty
/// covered lines stage their current bytes and await the next fence.
/// Counts one persistence event.
#[inline]
pub(crate) fn on_flush(addr: usize, len: usize) {
    if len == 0 || !ENABLED.load(Ordering::Relaxed) {
        return;
    }
    crate::metrics::incr(crate::metrics::Counter::ShadowFlushEvents);
    EVENTS.fetch_add(1, Ordering::Relaxed);
    let Some(t) = tracker_covering(addr) else {
        return;
    };
    // A flush is an event of the region it lands in, and only that one.
    let n = t.events.fetch_add(1, Ordering::Relaxed) + 1;
    crate::sched::note_event(t.base, n, crate::sched::EventKind::Flush);
    run_plan(t.base, n);
    let mut s = lock(&t.state);
    for line in line_range(&t, addr, len) {
        if s.lines[line] == CLEAN {
            continue;
        }
        let off = line * SHADOW_LINE;
        let take = SHADOW_LINE.min(t.size - off);
        let mut bytes = [0u8; SHADOW_LINE];
        // SAFETY: the region is mapped while registered; `off + take`
        // stays inside it.
        unsafe {
            std::ptr::copy_nonoverlapping((t.base + off) as *const u8, bytes.as_mut_ptr(), take);
        }
        if s.lines[line] == DIRTY {
            s.pending.push(line as u32);
            s.lines[line] = PENDING;
        }
        s.staged.insert(line as u32, bytes);
    }
}

/// Fence hook (called from [`crate::latency::wbarrier`]): every line
/// flushed since the previous fence commits its staged bytes into the
/// persisted view. Counts one persistence event.
#[inline]
pub(crate) fn on_fence() {
    if !ENABLED.load(Ordering::Relaxed) {
        return;
    }
    crate::metrics::incr(crate::metrics::Counter::ShadowFenceEvents);
    EVENTS.fetch_add(1, Ordering::Relaxed);
    let trackers: Vec<Arc<Tracker>> = lock(&TRACKERS).clone();
    // A fence is ambient: it is an event of *every* tracked region. The
    // plan (if armed) sees its own region's event number, before the
    // commit below takes effect.
    for t in &trackers {
        let n = t.events.fetch_add(1, Ordering::Relaxed) + 1;
        crate::sched::note_event(t.base, n, crate::sched::EventKind::Fence);
        run_plan(t.base, n);
    }
    for t in trackers {
        let mut s = lock(&t.state);
        if s.pending.is_empty() {
            continue;
        }
        let pending = std::mem::take(&mut s.pending);
        let TrackState {
            lines,
            staged,
            persisted,
            repl_dirty,
            ..
        } = &mut *s;
        for line in pending {
            let idx = line as usize;
            // Entries whose line was re-dirtied since the flush are stale:
            // their staged bytes were discarded by `track_store`.
            if lines[idx] != PENDING {
                continue;
            }
            if let Some(bytes) = staged.remove(&line) {
                let off = idx * SHADOW_LINE;
                let take = SHADOW_LINE.min(t.size - off);
                if let Some(dirty) = repl_dirty.as_mut() {
                    if persisted[off..off + take] != bytes[..take] {
                        dirty[idx] = true;
                    }
                }
                persisted[off..off + take].copy_from_slice(&bytes[..take]);
            }
            lines[idx] = CLEAN;
        }
    }
}

/// The number of persistence events observed for the region mapped at
/// `base`: flushes landing in that region plus every fence (fences are
/// ambient and count for each tracked region). Returns 0 when the region
/// is not tracked. Two concurrently shadowed regions keep independent
/// counts; [`FaultPlan`] event numbers refer to this counter of the
/// planned region.
pub fn event_count_for(base: usize) -> u64 {
    tracker_for_base(base).map_or(0, |t| t.events.load(Ordering::Relaxed))
}

/// Resets the per-region event counter of the region mapped at `base`
/// (typically right before arming a [`FaultPlan`] so event numbers are
/// workload-relative). A no-op when the region is not tracked.
pub fn reset_events_for(base: usize) {
    if let Some(t) = tracker_for_base(base) {
        t.events.store(0, Ordering::Relaxed);
    }
}

/// The process-global count of persistence events (flushes + fences)
/// observed while tracking was enabled, in any region or none.
///
/// Deprecated alias: with more than one shadowed region the global count
/// interleaves unrelated workloads — prefer [`event_count_for`].
pub fn event_count() -> u64 {
    EVENTS.load(Ordering::Relaxed)
}

/// Resets the global event counter *and* every per-region counter.
///
/// Deprecated alias of [`reset_events_for`]; kept for single-region
/// callers.
pub fn reset_events() {
    EVENTS.store(0, Ordering::Relaxed);
    for t in lock(&TRACKERS).iter() {
        t.events.store(0, Ordering::Relaxed);
    }
}

// -- replication support (see `crate::repl`) ---------------------------------

/// Starts maintaining the replication dirty-line set for the region
/// mapped at `base`.
///
/// # Errors
///
/// [`ShadowError`] when the region is unknown or not shadow-tracked.
pub(crate) fn repl_attach(base: usize) -> Result<(), ShadowError> {
    let t = tracker_for_base(base).ok_or_else(|| not_tracked(base))?;
    let mut s = lock(&t.state);
    let nlines = s.lines.len();
    s.repl_dirty = Some(vec![false; nlines]);
    Ok(())
}

/// Stops maintaining the replication dirty-line set for `base`.
pub(crate) fn repl_detach(base: usize) {
    if let Some(t) = tracker_for_base(base) {
        lock(&t.state).repl_dirty = None;
    }
}

/// Drains the replication dirty-line set: every line whose *durable*
/// bytes changed since the previous drain is returned with its persisted
/// contents, and its flag is cleared — writers are only blocked for the
/// duration of this copy. Returns `None` when no repl source is attached.
pub(crate) fn repl_drain(base: usize) -> Option<Vec<(u32, [u8; SHADOW_LINE])>> {
    let t = tracker_for_base(base)?;
    let mut s = lock(&t.state);
    let TrackState {
        persisted,
        repl_dirty,
        ..
    } = &mut *s;
    let dirty = repl_dirty.as_mut()?;
    let mut out = Vec::new();
    for (line, d) in dirty.iter_mut().enumerate() {
        if !*d {
            continue;
        }
        *d = false;
        let off = line * SHADOW_LINE;
        let take = SHADOW_LINE.min(t.size - off);
        let mut bytes = [0u8; SHADOW_LINE];
        bytes[..take].copy_from_slice(&persisted[off..off + take]);
        out.push((line as u32, bytes));
    }
    Some(out)
}

/// A copy of the persisted (durable) view of the region mapped at `base`,
/// or `None` if it is not tracked.
pub fn persisted_view(base: usize) -> Option<Vec<u8>> {
    let t = tracker_for_base(base)?;
    let s = lock(&t.state);
    Some(s.persisted.clone())
}

pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Targeted bit-rot: flips 1–3 distinct bits (count and positions decided
/// deterministically by `seed`) inside `[off, off + len)` of `image`. The
/// range is clamped to the image; returns how many bits were flipped
/// (0 for an empty/out-of-range target).
pub fn corrupt_range(image: &mut [u8], off: usize, len: usize, seed: u64) -> u64 {
    let len = len.min(image.len().saturating_sub(off));
    if len == 0 {
        return 0;
    }
    let total_bits = (len as u64) * 8;
    let want = (1 + splitmix64(seed) % 3).min(total_bits);
    let mut chosen: Vec<u64> = Vec::with_capacity(want as usize);
    let mut counter = seed ^ 0x5EED_0B17_5EED_0B17;
    while (chosen.len() as u64) < want {
        counter = counter.wrapping_add(1);
        let pos = splitmix64(counter) % total_bits;
        if chosen.contains(&pos) {
            continue;
        }
        image[off + (pos / 8) as usize] ^= 1 << (pos % 8);
        chosen.push(pos);
    }
    chosen.len() as u64
}

/// Whole-line bit-rot: picks `lines` distinct cache lines of `image`
/// (clamped to the line count) deterministically from `seed` and runs
/// [`corrupt_range`] over each. Returns `(lines_rotted, bits_flipped)`.
pub fn corrupt_lines(image: &mut [u8], lines: u32, seed: u64) -> (u64, u64) {
    let nlines = image.len().div_ceil(SHADOW_LINE);
    if nlines == 0 {
        return (0, 0);
    }
    let want = (lines as usize).min(nlines);
    let mut chosen: Vec<usize> = Vec::with_capacity(want);
    let mut counter = seed;
    while chosen.len() < want {
        counter = counter.wrapping_add(1);
        let line = (splitmix64(counter) % nlines as u64) as usize;
        if chosen.contains(&line) {
            continue;
        }
        chosen.push(line);
    }
    let mut bits = 0u64;
    for (i, &line) in chosen.iter().enumerate() {
        let off = line * SHADOW_LINE;
        bits += corrupt_range(image, off, SHADOW_LINE, splitmix64(seed ^ (i as u64) << 17));
    }
    (chosen.len() as u64, bits)
}

/// Captures a crash image of the region mapped at `base` under `policy`:
/// clean lines keep current memory, non-clean lines are dropped or torn.
/// The image carries the dirty flag and a [`FaultStamp`].
///
/// # Errors
///
/// [`ShadowError::ShadowNotEnabled`] when the region is open but
/// untracked, [`ShadowError::RegionUnknown`] when nothing is mapped at
/// `base`.
pub fn capture_crash_image(
    base: usize,
    policy: FaultPolicy,
) -> Result<(Vec<u8>, FaultReport), ShadowError> {
    capture_at_event(base, policy, 0)
}

fn capture_at_event(
    base: usize,
    policy: FaultPolicy,
    event: u64,
) -> Result<(Vec<u8>, FaultReport), ShadowError> {
    let t = tracker_for_base(base).ok_or_else(|| not_tracked(base))?;
    let s = lock(&t.state);
    // SAFETY: the region is mapped while registered.
    let mut image = unsafe { std::slice::from_raw_parts(t.base as *const u8, t.size) }.to_vec();
    let mut report = FaultReport {
        event,
        mode: policy.mode(),
        seed: policy.seed(),
        ..FaultReport::default()
    };
    for (line, &st) in s.lines.iter().enumerate() {
        if st == CLEAN {
            continue;
        }
        let off = line * SHADOW_LINE;
        let take = SHADOW_LINE.min(t.size - off);
        match policy {
            FaultPolicy::DropUnflushed => {
                image[off..off + take].copy_from_slice(&s.persisted[off..off + take]);
                report.dropped_lines += 1;
            }
            FaultPolicy::TearWords { seed } => {
                let words = take / 8;
                let mut reverted = 0u64;
                for w in 0..words {
                    let coin = splitmix64(seed ^ ((line as u64) << 3 | w as u64));
                    if coin & 1 == 0 {
                        let wo = off + w * 8;
                        image[wo..wo + 8].copy_from_slice(&s.persisted[wo..wo + 8]);
                        reverted += 1;
                    }
                }
                if reverted == words as u64 {
                    report.dropped_lines += 1;
                } else if reverted > 0 {
                    report.torn_lines += 1;
                    report.torn_words += reverted;
                }
            }
            // Bit-rot keeps every store (media decay is orthogonal to the
            // persistence protocol); corruption is applied below.
            FaultPolicy::BitRot { .. } => {}
        }
    }
    if let FaultPolicy::BitRot { lines, seed } = policy {
        let (rotted, bits) = corrupt_lines(&mut image, lines, seed);
        report.rotted_lines = rotted;
        report.flipped_bits = bits;
    }
    // A crash image is dirty by definition (header flags, offset 24).
    image[24] |= 1;
    let stamp = FaultStamp::from_report(&report);
    stamp.write_to(&mut image[t.stamp_off..t.stamp_off + std::mem::size_of::<FaultStamp>()]);
    Ok((image, report))
}

fn run_plan(base: usize, n: u64) {
    let mut abort_event = None;
    {
        let mut plan = lock(&PLAN);
        if let Some(p) = plan.as_mut() {
            // Events are per-region: a flush or fence of another region
            // never advances this plan's crash clock.
            if p.base != base {
                return;
            }
            let capture = match p.mode {
                PlanMode::CaptureAll => true,
                PlanMode::AtNth { at, .. } => at == n && !p.fired,
            };
            if capture {
                if let Ok((image, report)) = capture_at_event(p.base, p.policy, n) {
                    p.crashes.push(CapturedCrash {
                        event: n,
                        image,
                        report,
                    });
                }
                if let PlanMode::AtNth { at, abort } = p.mode {
                    if at == n {
                        p.fired = true;
                        if abort {
                            abort_event = Some(n);
                        }
                    }
                }
            }
        }
    }
    if let Some(event) = abort_event {
        std::panic::panic_any(CrashPointReached { event });
    }
}

/// Deterministic crash-point scheduler. At most one plan is armed
/// process-wide; dropping the plan disarms it.
///
/// Events are numbered from 1 *per region* (relative to the planned
/// region's last [`reset_events_for`]): flushes landing in the region
/// plus every fence. The captured image at event `n` reflects events
/// `1..n` *minus* event `n` itself — the crash happens just before the
/// n-th flush or fence takes effect.
#[derive(Debug)]
pub struct FaultPlan {
    active: bool,
}

impl FaultPlan {
    fn arm(region: &Region, policy: FaultPolicy, mode: PlanMode) -> FaultPlan {
        assert!(
            is_tracked(region.base()),
            "enable_shadow() must be called on the region before arming a FaultPlan"
        );
        let mut plan = lock(&PLAN);
        assert!(plan.is_none(), "a FaultPlan is already armed");
        *plan = Some(PlanState {
            base: region.base(),
            policy,
            mode,
            fired: false,
            crashes: Vec::new(),
        });
        FaultPlan { active: true }
    }

    /// Captures a faulted crash image of `region` at the `n`-th
    /// persistence event (`n >= 1`); the run continues normally.
    pub fn crash_at_nth_event(region: &Region, policy: FaultPolicy, n: u64) -> FaultPlan {
        assert!(n >= 1, "events are numbered from 1");
        Self::arm(
            region,
            policy,
            PlanMode::AtNth {
                at: n,
                abort: false,
            },
        )
    }

    /// Like [`FaultPlan::crash_at_nth_event`], but additionally aborts
    /// the run by panicking with [`CrashPointReached`] after the capture,
    /// so the process-visible workload really stops at the crash point.
    pub fn abort_at_nth_event(region: &Region, policy: FaultPolicy, n: u64) -> FaultPlan {
        assert!(n >= 1, "events are numbered from 1");
        Self::arm(region, policy, PlanMode::AtNth { at: n, abort: true })
    }

    /// Captures a faulted crash image at *every* persistence event — one
    /// workload run enumerates all its crash points.
    pub fn capture_all(region: &Region, policy: FaultPolicy) -> FaultPlan {
        Self::arm(region, policy, PlanMode::CaptureAll)
    }

    /// Takes the crash captured so far, if any (single-crash plans).
    pub fn take_crash(&mut self) -> Option<CapturedCrash> {
        self.take_crashes().into_iter().next()
    }

    /// Takes every crash captured so far, oldest first.
    pub fn take_crashes(&mut self) -> Vec<CapturedCrash> {
        let mut plan = lock(&PLAN);
        match plan.as_mut() {
            Some(p) => std::mem::take(&mut p.crashes),
            None => Vec::new(),
        }
    }

    /// Disarms the plan and returns every captured crash.
    pub fn disarm(mut self) -> Vec<CapturedCrash> {
        let crashes = self.take_crashes();
        *lock(&PLAN) = None;
        self.active = false;
        crashes
    }
}

impl Drop for FaultPlan {
    fn drop(&mut self) {
        if self.active {
            *lock(&PLAN) = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency;

    // NOTE on test hygiene: the event counter and the fence hook are
    // process-global, and sibling tests in this binary issue flushes and
    // fences concurrently. Tests here therefore avoid asserting global
    // event counts or that a *pending* line stays unpersisted across
    // foreign fences; the serialized `tests/crash_matrix.rs` binary covers
    // those properties. Dirty-line behaviour is immune: only a flush of
    // the tracked address range can move a dirty line onward.

    fn stamp_off() -> usize {
        crate::region::RegionHeader::fault_stamp_offset() as usize
    }

    #[test]
    fn untracked_stores_persist_silently() {
        let r = Region::create(1 << 20).unwrap();
        r.enable_shadow().unwrap();
        let p = r.alloc(64, 16).unwrap().as_ptr() as *mut u64;
        unsafe { p.write(0xAAAA) }; // not tracked
        let (image, report) = capture_crash_image(r.base(), FaultPolicy::DropUnflushed).unwrap();
        let off = p as usize - r.base();
        let got = u64::from_le_bytes(image[off..off + 8].try_into().unwrap());
        assert_eq!(got, 0xAAAA, "untracked store must survive the crash");
        assert_eq!(report.dropped_lines, 0);
        r.close().unwrap();
    }

    #[test]
    fn tracked_unflushed_store_is_dropped() {
        let r = Region::create(1 << 20).unwrap();
        let p = r.alloc(64, 16).unwrap().as_ptr() as *mut u64;
        unsafe { p.write(1) };
        r.enable_shadow().unwrap(); // checkpoint: value 1 is persisted
        unsafe { p.write(2) };
        track_store(p as usize, 8);
        let (image, report) = capture_crash_image(r.base(), FaultPolicy::DropUnflushed).unwrap();
        let off = p as usize - r.base();
        let got = u64::from_le_bytes(image[off..off + 8].try_into().unwrap());
        assert_eq!(got, 1, "unflushed tracked store must revert");
        assert!(report.dropped_lines >= 1);
        // The stamp is embedded and parses back.
        let stamp = FaultStamp::parse(&image[stamp_off()..]).unwrap();
        assert_eq!(stamp.mode, 1);
        assert_eq!(stamp.dropped_lines, report.dropped_lines);
        // The image is marked dirty.
        assert_eq!(image[24] & 1, 1);
        r.close().unwrap();
    }

    #[test]
    fn flushed_and_fenced_store_survives() {
        let r = Region::create(1 << 20).unwrap();
        let p = r.alloc(64, 16).unwrap().as_ptr() as *mut u64;
        unsafe { p.write(1) };
        r.enable_shadow().unwrap();
        unsafe { p.write(2) };
        track_store(p as usize, 8);
        latency::clflush_range(p as usize, 8);
        latency::wbarrier();
        let (image, report) = capture_crash_image(r.base(), FaultPolicy::DropUnflushed).unwrap();
        let off = p as usize - r.base();
        let got = u64::from_le_bytes(image[off..off + 8].try_into().unwrap());
        assert_eq!(got, 2, "flushed+fenced store is durable");
        assert_eq!(report.dropped_lines, 0);
        r.close().unwrap();
    }

    #[test]
    fn tear_policy_is_deterministic_and_word_granular() {
        let r = Region::create(1 << 20).unwrap();
        let p = r.alloc(128, 16).unwrap().as_ptr() as *mut u64;
        for i in 0..16 {
            unsafe { p.add(i).write(100) };
        }
        r.enable_shadow().unwrap();
        for i in 0..16 {
            unsafe { p.add(i).write(200 + i as u64) };
        }
        track_store(p as usize, 128);
        let (img1, rep1) =
            capture_crash_image(r.base(), FaultPolicy::TearWords { seed: 7 }).unwrap();
        let (img2, rep2) =
            capture_crash_image(r.base(), FaultPolicy::TearWords { seed: 7 }).unwrap();
        assert_eq!(img1, img2, "same seed, same tear");
        assert_eq!(rep1, rep2);
        let off = p as usize - r.base();
        let mut old = 0;
        let mut new = 0;
        for i in 0..16 {
            let got = u64::from_le_bytes(img1[off + i * 8..off + i * 8 + 8].try_into().unwrap());
            if got == 100 {
                old += 1;
            } else if got == 200 + i as u64 {
                new += 1;
            } else {
                panic!("torn word has neither old nor new value: {got}");
            }
        }
        assert_eq!(old + new, 16, "every word is exactly old or new");
        let (img3, _) = capture_crash_image(r.base(), FaultPolicy::TearWords { seed: 8 }).unwrap();
        assert_ne!(img1, img3, "different seed, different tear");
        r.close().unwrap();
    }

    #[test]
    fn checkpoint_resets_tracking() {
        let r = Region::create(1 << 20).unwrap();
        let p = r.alloc(64, 16).unwrap().as_ptr() as *mut u64;
        r.enable_shadow().unwrap();
        unsafe { p.write(5) };
        track_store(p as usize, 8);
        checkpoint(r.base());
        let (image, report) = capture_crash_image(r.base(), FaultPolicy::DropUnflushed).unwrap();
        let off = p as usize - r.base();
        let got = u64::from_le_bytes(image[off..off + 8].try_into().unwrap());
        assert_eq!(got, 5, "checkpoint made the value durable");
        assert_eq!(report.dropped_lines, 0);
        r.close().unwrap();
    }

    #[test]
    fn persisted_view_matches_drop_image_payload() {
        let r = Region::create(1 << 20).unwrap();
        let p = r.alloc(64, 16).unwrap().as_ptr() as *mut u64;
        unsafe { p.write(3) };
        r.enable_shadow().unwrap();
        unsafe { p.write(4) };
        track_store(p as usize, 8);
        let view = persisted_view(r.base()).unwrap();
        let off = p as usize - r.base();
        assert_eq!(
            u64::from_le_bytes(view[off..off + 8].try_into().unwrap()),
            3
        );
        r.close().unwrap();
    }

    #[test]
    fn corrupt_range_is_deterministic_and_bounded() {
        let mut a = vec![0u8; 256];
        let mut b = vec![0u8; 256];
        let bits = corrupt_range(&mut a, 64, 64, 42);
        assert_eq!(bits, corrupt_range(&mut b, 64, 64, 42));
        assert_eq!(a, b, "same seed, same rot");
        assert!((1..=3).contains(&bits));
        // Only the targeted range was touched.
        assert!(a[..64].iter().all(|&x| x == 0));
        assert!(a[128..].iter().all(|&x| x == 0));
        let flipped: u32 = a[64..128].iter().map(|x| x.count_ones()).sum();
        assert_eq!(flipped as u64, bits, "distinct bit positions");
        // Out-of-range target is a no-op.
        assert_eq!(corrupt_range(&mut a, 300, 64, 1), 0);
    }

    #[test]
    fn corrupt_lines_hits_distinct_lines() {
        let mut img = vec![0u8; 1024];
        let (lines, bits) = corrupt_lines(&mut img, 4, 7);
        assert_eq!(lines, 4);
        assert!(bits >= 4);
        let dirty_lines = img
            .chunks(SHADOW_LINE)
            .filter(|c| c.iter().any(|&x| x != 0))
            .count();
        assert_eq!(dirty_lines as u64, lines);
        // Asking for more lines than exist clamps.
        let mut small = vec![0u8; 128];
        let (l2, _) = corrupt_lines(&mut small, 100, 7);
        assert_eq!(l2, 2);
    }

    #[test]
    fn bitrot_policy_keeps_stores_and_stamps_the_image() {
        let r = Region::create(1 << 20).unwrap();
        let p = r.alloc(64, 16).unwrap().as_ptr() as *mut u64;
        r.enable_shadow().unwrap();
        unsafe { p.write(9) }; // untracked and unflushed: bit-rot keeps it
        let policy = FaultPolicy::BitRot { lines: 3, seed: 11 };
        let (img1, rep1) = capture_crash_image(r.base(), policy).unwrap();
        let (img2, rep2) = capture_crash_image(r.base(), policy).unwrap();
        assert_eq!(img1, img2, "same seed, same rot");
        assert_eq!(rep1, rep2);
        assert_eq!(rep1.mode, 3);
        assert_eq!(rep1.rotted_lines, 3);
        assert!((3..=9).contains(&rep1.flipped_bits));
        assert_eq!(rep1.dropped_lines, 0, "bit-rot never drops stores");
        let stamp = FaultStamp::parse(&img1[stamp_off()..]).unwrap();
        assert_eq!(stamp.mode, 3);
        assert_eq!(stamp.rotted_lines, rep1.rotted_lines);
        assert_eq!(stamp.flipped_bits, rep1.flipped_bits);
        r.close().unwrap();
    }

    #[test]
    fn capture_errors_are_typed() {
        let r = Region::create(1 << 20).unwrap();
        let base = r.base();
        let err = capture_crash_image(base, FaultPolicy::DropUnflushed).unwrap_err();
        assert_eq!(err, ShadowError::ShadowNotEnabled { base });
        assert!(!err.to_string().is_empty());
        r.close().unwrap();
        let err = capture_crash_image(base, FaultPolicy::DropUnflushed).unwrap_err();
        assert_eq!(err, ShadowError::RegionUnknown { base });
        let nv: crate::NvError = err.into();
        assert!(matches!(nv, crate::NvError::RegionUnknown { .. }));
    }

    #[test]
    fn flushes_only_count_for_their_region() {
        let a = Region::create(1 << 20).unwrap();
        let b = Region::create(1 << 20).unwrap();
        a.enable_shadow().unwrap();
        b.enable_shadow().unwrap();
        let pa = a.alloc(256, 16).unwrap().as_ptr() as usize;
        let a0 = event_count_for(a.base());
        let b0 = event_count_for(b.base());
        for _ in 0..100 {
            track_store(pa, 64);
            latency::clflush_range(pa, 64);
        }
        assert!(event_count_for(a.base()) >= a0 + 100);
        // Concurrent sibling tests may fence (ambient events), but the
        // 100 flushes of region A must not land on region B's counter.
        assert!(
            event_count_for(b.base()) < b0 + 100,
            "a flush of region A counted as events of region B"
        );
        a.close().unwrap();
        b.close().unwrap();
    }

    #[test]
    fn repl_drain_returns_durably_changed_lines_once() {
        let r = Region::create(1 << 20).unwrap();
        r.enable_shadow().unwrap();
        repl_attach(r.base()).unwrap();
        let p = r.alloc(64, 16).unwrap().as_ptr() as *mut u64;
        unsafe { p.write(42) };
        track_store(p as usize, 8);
        latency::clflush_range(p as usize, 8);
        latency::wbarrier();
        let lines = repl_drain(r.base()).unwrap();
        let line = (p as usize - r.base()) / SHADOW_LINE;
        assert!(
            lines
                .iter()
                .any(|(l, bytes)| *l as usize == line && bytes[..8] == 42u64.to_le_bytes()),
            "fenced store must appear in the drained delta"
        );
        assert!(
            repl_drain(r.base()).unwrap().is_empty(),
            "drain clears the dirty set"
        );
        repl_detach(r.base());
        assert!(repl_drain(r.base()).is_none(), "detached: no repl set");
        r.close().unwrap();
    }

    #[test]
    fn checkpoint_feeds_untracked_stores_into_repl_set() {
        let r = Region::create(1 << 20).unwrap();
        r.enable_shadow().unwrap();
        repl_attach(r.base()).unwrap();
        let _ = repl_drain(r.base()); // discard registration noise
        let p = r.alloc(64, 16).unwrap().as_ptr() as *mut u64;
        unsafe { p.write(7) }; // untracked, unflushed
        checkpoint(r.base());
        let lines = repl_drain(r.base()).unwrap();
        let line = (p as usize - r.base()) / SHADOW_LINE;
        assert!(
            lines.iter().any(|(l, _)| *l as usize == line),
            "checkpoint must mark durably-changed untracked lines"
        );
        repl_detach(r.base());
        r.close().unwrap();
    }

    #[test]
    fn teardown_unregisters_tracker() {
        let r = Region::create(1 << 20).unwrap();
        let base = r.base();
        r.enable_shadow().unwrap();
        assert!(is_tracked(base));
        r.close().unwrap();
        assert!(!is_tracked(base));
    }
}
