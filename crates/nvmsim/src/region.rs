//! NVRegions: the loading unit of the simulated NVM (Section 2.2).
//!
//! A region is a contiguous chunk of memory mapped into one NV segment. Its
//! first bytes hold a [`RegionHeader`] — magic, version, region ID, the
//! named-root directory, and the embedded allocator state — all expressed
//! position-independently (offsets only), so a persisted image can be
//! remapped at *any* segment base in a later run. Reopening a file-backed
//! region picks a random free segment, which is how the experiments exercise
//! position independence: every reopen lands the data somewhere new, exactly
//! like address-space randomization would.

use crate::alloc::{AllocHeader, AllocStats};
use crate::error::{NvError, Result};
use crate::mem::align_up;
use crate::nvspace::{NvSpace, SegIndex};
use crate::registry;
use parking_lot::Mutex;
use std::fs::{File, OpenOptions};
use std::io::Read;
use std::path::{Path, PathBuf};
use std::ptr::NonNull;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Magic number identifying a region image ("NVPIRGN1").
pub const REGION_MAGIC: u64 = u64::from_le_bytes(*b"NVPIRGN1");
/// Current on-media format version.
pub const HEADER_VERSION: u32 = 1;
/// Maximum number of named roots per region.
pub const MAX_ROOTS: usize = 16;
/// Maximum root name length in bytes (NUL-padded storage).
pub const ROOT_NAME_CAP: usize = 31;

const FLAG_DIRTY: u64 = 1;

#[repr(C)]
#[derive(Clone, Copy, Debug)]
struct RootEntry {
    name: [u8; ROOT_NAME_CAP + 1],
    offset: u64,
    type_tag: u64,
}

/// On-media region header. Lives at offset 0 of the mapped segment.
#[repr(C)]
#[derive(Debug)]
pub struct RegionHeader {
    magic: u64,
    version: u32,
    rid: u32,
    size: u64,
    flags: u64,
    user_tag: u64,
    roots: [RootEntry; MAX_ROOTS],
    alloc: AllocHeader,
}

impl RegionHeader {
    /// Offset of the first allocatable byte in a region.
    pub fn data_start() -> u64 {
        align_up(std::mem::size_of::<RegionHeader>(), 64) as u64
    }
}

#[derive(Debug)]
enum Backing {
    Anonymous,
    File {
        file: File,
        path: PathBuf,
        shared: bool,
    },
}

#[derive(Debug)]
struct Inner {
    space: &'static NvSpace,
    rid: u32,
    seg: SegIndex,
    base: usize,
    size: usize,
    was_dirty: bool,
    backing: Backing,
    alloc_lock: Mutex<()>,
    closed: AtomicBool,
}

/// Handle to an open NVRegion.
///
/// Cloning the handle is cheap (it is an `Arc`); the region closes when
/// [`Region::close`] is called or the last handle drops.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), nvmsim::NvError> {
/// use nvmsim::Region;
///
/// let region = Region::create(1 << 20)?;
/// let p = region.alloc(64, 8)?;
/// region.set_root("head", p.as_ptr() as usize)?;
/// assert_eq!(region.root("head").unwrap(), p.as_ptr() as usize);
/// region.close()?;
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct Region {
    inner: Arc<Inner>,
}

impl Region {
    /// Creates an anonymous (non-durable) region of `size` bytes with an
    /// automatically assigned region ID.
    ///
    /// # Errors
    ///
    /// Fails if no segment or region ID is available, or `size` exceeds the
    /// segment size.
    pub fn create(size: usize) -> Result<Region> {
        let space = NvSpace::global();
        let rid = auto_rid(space)?;
        Self::build(space, rid, size, None)
    }

    /// Creates an anonymous region with an explicit region ID.
    ///
    /// # Errors
    ///
    /// As [`Region::create`]; additionally [`NvError::InvalidRid`] if `rid`
    /// is out of range or already open.
    pub fn create_with_rid(rid: u32, size: usize) -> Result<Region> {
        Self::build(NvSpace::global(), rid, size, None)
    }

    /// Creates a durable, file-backed region of `size` bytes at `path`.
    /// The file is created (truncated if it exists) and sized immediately.
    ///
    /// # Errors
    ///
    /// As [`Region::create`], plus I/O errors creating the file.
    pub fn create_file<P: AsRef<Path>>(path: P, size: usize) -> Result<Region> {
        let space = NvSpace::global();
        let rid = auto_rid(space)?;
        Self::create_file_with_rid(path, rid, size)
    }

    /// Creates a durable, file-backed region with an explicit region ID.
    ///
    /// # Errors
    ///
    /// As [`Region::create_file`].
    pub fn create_file_with_rid<P: AsRef<Path>>(path: P, rid: u32, size: usize) -> Result<Region> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path.as_ref())?;
        file.set_len(size as u64)?;
        let backing = Backing::File {
            file,
            path: path.as_ref().to_path_buf(),
            shared: true,
        };
        Self::build(NvSpace::global(), rid, size, Some(backing))
    }

    fn build(
        space: &'static NvSpace,
        rid: u32,
        size: usize,
        backing: Option<Backing>,
    ) -> Result<Region> {
        let layout = space.layout();
        if !layout.rid_in_range(rid) {
            return Err(NvError::InvalidRid {
                rid,
                reason: "out of range for layout",
            });
        }
        if size < RegionHeader::data_start() as usize + 64 || size > layout.segment_size() {
            return Err(NvError::BadImage(format!(
                "region size {size} outside [{}, {}]",
                RegionHeader::data_start() as usize + 64,
                layout.segment_size()
            )));
        }
        let seg = space.acquire_segment()?;
        let commit = match &backing {
            Some(Backing::File { file, shared, .. }) => {
                space.commit_segment_file(seg, size, file, *shared)
            }
            _ => space.commit_segment_anon(seg, size),
        };
        if let Err(e) = commit {
            space.release_segment(seg);
            return Err(e);
        }
        if let Err(e) = space.bind(rid, seg) {
            let _ = space.decommit_segment(seg, size);
            space.release_segment(seg);
            return Err(e);
        }
        let base = space.segment_base(seg);
        // SAFETY: the segment is committed read/write and at least `size`
        // bytes; we own it exclusively until the handle is shared.
        unsafe {
            let hdr = &mut *(base as *mut RegionHeader);
            hdr.magic = REGION_MAGIC;
            hdr.version = HEADER_VERSION;
            hdr.rid = rid;
            hdr.size = size as u64;
            hdr.flags = FLAG_DIRTY;
            hdr.user_tag = 0;
            hdr.roots = [RootEntry {
                name: [0; ROOT_NAME_CAP + 1],
                offset: 0,
                type_tag: 0,
            }; MAX_ROOTS];
            hdr.alloc.init(RegionHeader::data_start(), size as u64);
        }
        let inner = Inner {
            space,
            rid,
            seg,
            base,
            size,
            was_dirty: false,
            backing: backing.unwrap_or(Backing::Anonymous),
            alloc_lock: Mutex::new(()),
            closed: AtomicBool::new(false),
        };
        registry::register(rid, base, size);
        Ok(Region {
            inner: Arc::new(inner),
        })
    }

    /// Opens an existing region image, mapping it writably (`MAP_SHARED`)
    /// at a fresh random segment.
    ///
    /// # Errors
    ///
    /// [`NvError::BadImage`] if validation fails, [`NvError::InvalidRid`] if
    /// the image's region ID is already open, plus I/O errors.
    pub fn open_file<P: AsRef<Path>>(path: P) -> Result<Region> {
        Self::open_impl(path.as_ref(), true)
    }

    /// Opens an existing region image copy-on-write (`MAP_PRIVATE`): all
    /// modifications stay in this session and the file is untouched. Useful
    /// for read-mostly consumers and repeated benchmark runs.
    ///
    /// # Errors
    ///
    /// As [`Region::open_file`].
    pub fn open_file_cow<P: AsRef<Path>>(path: P) -> Result<Region> {
        Self::open_impl(path.as_ref(), false)
    }

    fn open_impl(path: &Path, shared: bool) -> Result<Region> {
        let space = NvSpace::global();
        let layout = space.layout();
        let mut file = OpenOptions::new().read(true).write(true).open(path)?;
        let flen = file.metadata()?.len();

        // Pre-validate the header from the file before mapping.
        let mut head = [0u8; 32];
        file.read_exact(&mut head)?;
        let magic = u64::from_le_bytes(head[0..8].try_into().unwrap());
        let version = u32::from_le_bytes(head[8..12].try_into().unwrap());
        let rid = u32::from_le_bytes(head[12..16].try_into().unwrap());
        let size = u64::from_le_bytes(head[16..24].try_into().unwrap());
        let flags = u64::from_le_bytes(head[24..32].try_into().unwrap());
        if magic != REGION_MAGIC {
            return Err(NvError::BadImage(format!("bad magic {magic:#x}")));
        }
        if version != HEADER_VERSION {
            return Err(NvError::BadImage(format!("unsupported version {version}")));
        }
        if size != flen {
            return Err(NvError::BadImage(format!(
                "header size {size} != file length {flen}"
            )));
        }
        if size as usize > layout.segment_size() {
            return Err(NvError::BadImage(format!(
                "region of {size} bytes exceeds segment size {}",
                layout.segment_size()
            )));
        }
        if !layout.rid_in_range(rid) {
            return Err(NvError::InvalidRid {
                rid,
                reason: "out of range for layout",
            });
        }
        if space.is_bound(rid) {
            return Err(NvError::InvalidRid {
                rid,
                reason: "already open in this process",
            });
        }

        let size = size as usize;
        let seg = space.acquire_segment()?;
        let cleanup = |seg| {
            let _ = space.decommit_segment(seg, size);
            space.release_segment(seg);
        };
        if let Err(e) = space.commit_segment_file(seg, size, &file, shared) {
            space.release_segment(seg);
            return Err(e);
        }
        let base = space.segment_base(seg);
        // Validate the embedded allocator metadata before trusting it.
        // SAFETY: the image is mapped and at least `size` bytes long.
        let check = unsafe {
            let hdr = &*(base as *const RegionHeader);
            hdr.alloc.check(base, RegionHeader::data_start())
        };
        if let Err(e) = check {
            cleanup(seg);
            return Err(e);
        }
        if let Err(e) = space.bind(rid, seg) {
            cleanup(seg);
            return Err(e);
        }
        let was_dirty = flags & FLAG_DIRTY != 0;
        // Mark dirty for the duration of this writable session.
        // SAFETY: header is mapped read/write.
        unsafe {
            (*(base as *mut RegionHeader)).flags |= FLAG_DIRTY;
        }
        let inner = Inner {
            space,
            rid,
            seg,
            base,
            size,
            was_dirty,
            backing: Backing::File {
                file,
                path: path.to_path_buf(),
                shared,
            },
            alloc_lock: Mutex::new(()),
            closed: AtomicBool::new(false),
        };
        registry::register(rid, base, size);
        Ok(Region {
            inner: Arc::new(inner),
        })
    }

    /// This region's ID.
    pub fn rid(&self) -> u32 {
        self.inner.rid
    }

    /// Current base address of the mapping.
    pub fn base(&self) -> usize {
        self.inner.base
    }

    /// Region size in bytes.
    pub fn size(&self) -> usize {
        self.inner.size
    }

    /// Whether the image was not cleanly closed before this open — i.e. a
    /// crash (real or simulated) happened. Recovery layers (see `pstore`)
    /// consult this.
    pub fn was_dirty(&self) -> bool {
        self.inner.was_dirty
    }

    /// Whether `addr` falls inside this region's current mapping.
    pub fn contains(&self, addr: usize) -> bool {
        addr >= self.inner.base && addr < self.inner.base + self.inner.size
    }

    fn check_open(&self) -> Result<()> {
        if self.inner.closed.load(Ordering::Acquire) {
            return Err(NvError::RegionClosed {
                rid: self.inner.rid,
            });
        }
        Ok(())
    }

    #[allow(clippy::mut_from_ref)]
    unsafe fn header_mut(&self) -> &mut RegionHeader {
        &mut *(self.inner.base as *mut RegionHeader)
    }

    fn header(&self) -> &RegionHeader {
        // SAFETY: the header is mapped for the lifetime of the handle.
        unsafe { &*(self.inner.base as *const RegionHeader) }
    }

    /// Allocates `size` bytes (alignment `align`, at most 16) inside the
    /// region and returns its absolute address for this session.
    ///
    /// # Errors
    ///
    /// [`NvError::OutOfMemory`] when the region is full,
    /// [`NvError::RegionClosed`] after close.
    pub fn alloc(&self, size: usize, align: usize) -> Result<NonNull<u8>> {
        let off = self.alloc_off(size, align)?;
        // SAFETY: the offset is inside the mapped region and nonzero.
        Ok(unsafe { NonNull::new_unchecked((self.inner.base + off as usize) as *mut u8) })
    }

    /// Like [`Region::alloc`] but returns the position-independent offset.
    ///
    /// # Errors
    ///
    /// As [`Region::alloc`].
    pub fn alloc_off(&self, size: usize, align: usize) -> Result<u64> {
        self.check_open()?;
        let _g = self.inner.alloc_lock.lock();
        // SAFETY: base is this region's base; the region stays mapped while
        // the handle exists.
        unsafe { self.header_mut().alloc.alloc(self.inner.base, size, align) }.map_err(
            |e| match e {
                NvError::OutOfMemory { requested, .. } => NvError::OutOfMemory {
                    region: self.inner.rid,
                    requested,
                },
                other => other,
            },
        )
    }

    /// Returns a block to the allocator.
    ///
    /// # Safety
    ///
    /// `ptr` must come from [`Region::alloc`] on this region with the same
    /// `size`, must not have been freed already, and no live references into
    /// the block may remain.
    pub unsafe fn dealloc(&self, ptr: NonNull<u8>, size: usize) {
        let off = (ptr.as_ptr() as usize - self.inner.base) as u64;
        let _g = self.inner.alloc_lock.lock();
        self.header_mut().alloc.dealloc(self.inner.base, off, size);
    }

    /// Converts an absolute address inside this region to its offset.
    ///
    /// # Errors
    ///
    /// [`NvError::AddressOutOfRange`] if `addr` is outside the region.
    pub fn offset_of(&self, addr: usize) -> Result<u64> {
        if !self.contains(addr) {
            return Err(NvError::AddressOutOfRange { addr });
        }
        Ok((addr - self.inner.base) as u64)
    }

    /// Converts a region offset to the absolute address in this session.
    ///
    /// # Panics
    ///
    /// Debug-asserts the offset is within the region.
    pub fn ptr_at(&self, off: u64) -> usize {
        debug_assert!((off as usize) < self.inner.size);
        self.inner.base + off as usize
    }

    /// Allocator statistics.
    pub fn stats(&self) -> AllocStats {
        let _g = self.inner.alloc_lock.lock();
        self.header().alloc.stats()
    }

    /// An application-defined tag stored in the header (e.g. a schema id).
    pub fn user_tag(&self) -> u64 {
        self.header().user_tag
    }

    /// Sets the application-defined header tag.
    pub fn set_user_tag(&self, tag: u64) {
        // SAFETY: plain u64 store into the mapped header.
        unsafe { self.header_mut().user_tag = tag }
    }

    // -- roots ---------------------------------------------------------------

    /// Registers (or updates) a named root pointing at `addr`.
    ///
    /// # Errors
    ///
    /// [`NvError::RootNameTooLong`], [`NvError::RootDirectoryFull`], or
    /// [`NvError::AddressOutOfRange`] if `addr` is outside the region.
    pub fn set_root(&self, name: &str, addr: usize) -> Result<()> {
        let off = self.offset_of(addr)?;
        self.set_root_off(name, off)
    }

    /// Registers (or updates) a named root with an application-defined
    /// type tag, letting consumers validate what kind of structure the
    /// root leads before dereferencing it.
    ///
    /// # Errors
    ///
    /// As [`Region::set_root`].
    pub fn set_root_tagged(&self, name: &str, addr: usize, type_tag: u64) -> Result<()> {
        let off = self.offset_of(addr)?;
        self.set_root_off(name, off)?;
        let _g = self.inner.alloc_lock.lock();
        // SAFETY: header mapped; serialized by alloc_lock.
        let hdr = unsafe { self.header_mut() };
        for entry in hdr.roots.iter_mut() {
            if entry.name[0] != 0 && root_name(entry) == name {
                entry.type_tag = type_tag;
                break;
            }
        }
        Ok(())
    }

    /// The type tag recorded for a named root (0 if untagged).
    pub fn root_tag(&self, name: &str) -> Option<u64> {
        self.header()
            .roots
            .iter()
            .find(|e| e.name[0] != 0 && root_name(e) == name)
            .map(|e| e.type_tag)
    }

    /// Looks up a root and validates its type tag, returning the absolute
    /// address only when the tag matches.
    ///
    /// # Errors
    ///
    /// [`NvError::RootNotFound`] when absent; [`NvError::BadImage`] when
    /// the tag differs from `expected_tag`.
    pub fn root_checked(&self, name: &str, expected_tag: u64) -> Result<usize> {
        let addr = self
            .root(name)
            .ok_or_else(|| NvError::RootNotFound(name.to_string()))?;
        let tag = self.root_tag(name).unwrap_or(0);
        if tag != expected_tag {
            return Err(NvError::BadImage(format!(
                "root {name:?} has type tag {tag:#x}, expected {expected_tag:#x}"
            )));
        }
        Ok(addr)
    }

    /// Registers (or updates) a named root by offset.
    ///
    /// # Errors
    ///
    /// As [`Region::set_root`].
    pub fn set_root_off(&self, name: &str, off: u64) -> Result<()> {
        self.check_open()?;
        if name.len() > ROOT_NAME_CAP || name.is_empty() {
            return Err(NvError::RootNameTooLong(name.to_string()));
        }
        let _g = self.inner.alloc_lock.lock();
        // SAFETY: header is mapped; mutation serialized by alloc_lock.
        let hdr = unsafe { self.header_mut() };
        let mut free_slot = None;
        for (i, entry) in hdr.roots.iter().enumerate() {
            if entry.name[0] == 0 {
                free_slot.get_or_insert(i);
            } else if root_name(entry) == name {
                hdr.roots[i].offset = off;
                return Ok(());
            }
        }
        let slot = free_slot.ok_or(NvError::RootDirectoryFull)?;
        let entry = &mut hdr.roots[slot];
        entry.name = [0; ROOT_NAME_CAP + 1];
        entry.name[..name.len()].copy_from_slice(name.as_bytes());
        entry.offset = off;
        entry.type_tag = 0;
        Ok(())
    }

    /// Absolute address of the named root in this session, if present.
    pub fn root(&self, name: &str) -> Option<usize> {
        self.root_off(name)
            .map(|off| self.inner.base + off as usize)
    }

    /// Offset of the named root, if present.
    pub fn root_off(&self, name: &str) -> Option<u64> {
        let hdr = self.header();
        hdr.roots
            .iter()
            .find(|e| e.name[0] != 0 && root_name(e) == name)
            .map(|e| e.offset)
    }

    /// Removes a named root. Returns whether it existed.
    pub fn remove_root(&self, name: &str) -> bool {
        let _g = self.inner.alloc_lock.lock();
        // SAFETY: serialized mutation of the mapped header.
        let hdr = unsafe { self.header_mut() };
        for entry in hdr.roots.iter_mut() {
            if entry.name[0] != 0 && root_name(entry) == name {
                entry.name = [0; ROOT_NAME_CAP + 1];
                entry.offset = 0;
                return true;
            }
        }
        false
    }

    /// Names of all registered roots.
    pub fn roots(&self) -> Vec<String> {
        self.header()
            .roots
            .iter()
            .filter(|e| e.name[0] != 0)
            .map(|e| root_name(e).to_string())
            .collect()
    }

    // -- durability ----------------------------------------------------------

    /// Flushes a file-backed region's bytes to its image file. No-op for
    /// anonymous regions.
    ///
    /// # Errors
    ///
    /// Propagates `msync` failures.
    pub fn sync(&self) -> Result<()> {
        self.check_open()?;
        if let Backing::File { shared: true, .. } = self.inner.backing {
            self.inner
                .space
                .sync_segment(self.inner.seg, self.inner.size)?;
        }
        Ok(())
    }

    /// Cleanly closes the region: clears the dirty flag, flushes (if
    /// durable), unmaps, and releases the segment and registry entries.
    ///
    /// # Errors
    ///
    /// Propagates flush/unmap failures; the region is unregistered either
    /// way.
    pub fn close(self) -> Result<()> {
        self.inner.teardown(true)
    }

    /// Simulates a crash: the mapping is torn down *without* clearing the
    /// dirty flag or issuing a final flush. A subsequent [`Region::open_file`]
    /// will report [`Region::was_dirty`] so recovery can run.
    pub fn crash(self) {
        let _ = self.inner.teardown(false);
    }

    /// Path of the backing file, if file-backed.
    pub fn path(&self) -> Option<&Path> {
        match &self.inner.backing {
            Backing::File { path, .. } => Some(path),
            Backing::Anonymous => None,
        }
    }
}

fn root_name(entry: &RootEntry) -> &str {
    let len = entry
        .name
        .iter()
        .position(|&b| b == 0)
        .unwrap_or(entry.name.len());
    std::str::from_utf8(&entry.name[..len]).unwrap_or("")
}

impl Inner {
    fn teardown(&self, clean: bool) -> Result<()> {
        if self.closed.swap(true, Ordering::AcqRel) {
            return Ok(());
        }
        let mut result = Ok(());
        if clean {
            // SAFETY: still mapped; we are the unique closer.
            unsafe {
                (*(self.base as *mut RegionHeader)).flags &= !FLAG_DIRTY;
            }
            if let Backing::File { shared: true, .. } = self.backing {
                result = self.space.sync_segment(self.seg, self.size);
            }
        }
        registry::unregister(self.rid);
        self.space.unbind(self.rid, self.seg);
        let d = self.space.decommit_segment(self.seg, self.size);
        self.space.release_segment(self.seg);
        result.and(d)
    }
}

impl Drop for Inner {
    fn drop(&mut self) {
        let _ = self.teardown(true);
    }
}

fn auto_rid(space: &NvSpace) -> Result<u32> {
    registry::alloc_rid(space.layout().max_rid(), |rid| space.is_bound(rid))
        .ok_or(NvError::NoFreeSegment)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir() -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "nvmsim-region-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn create_alloc_write_read() {
        let r = Region::create(1 << 20).unwrap();
        let p = r.alloc(128, 8).unwrap();
        unsafe {
            std::ptr::write_bytes(p.as_ptr(), 0x5A, 128);
            assert_eq!(*p.as_ptr().add(127), 0x5A);
        }
        assert!(r.contains(p.as_ptr() as usize));
        r.close().unwrap();
    }

    #[test]
    fn rid_is_discoverable_from_any_inner_address() {
        let r = Region::create(1 << 20).unwrap();
        let p = r.alloc(64, 8).unwrap();
        let space = NvSpace::global();
        assert_eq!(space.rid_of_addr(p.as_ptr() as usize), r.rid());
        assert_eq!(space.base_of_rid(r.rid()), r.base());
        r.close().unwrap();
    }

    #[test]
    fn roots_roundtrip_and_update() {
        let r = Region::create(1 << 20).unwrap();
        let a = r.alloc(64, 8).unwrap().as_ptr() as usize;
        let b = r.alloc(64, 8).unwrap().as_ptr() as usize;
        r.set_root("head", a).unwrap();
        assert_eq!(r.root("head"), Some(a));
        r.set_root("head", b).unwrap();
        assert_eq!(r.root("head"), Some(b));
        assert_eq!(r.root("tail"), None);
        assert_eq!(r.roots(), vec!["head".to_string()]);
        assert!(r.remove_root("head"));
        assert!(!r.remove_root("head"));
        r.close().unwrap();
    }

    #[test]
    fn tagged_roots_validate_type() {
        let r = Region::create(1 << 20).unwrap();
        let a = r.alloc(64, 8).unwrap().as_ptr() as usize;
        r.set_root_tagged("list", a, 0x4c495354).unwrap();
        assert_eq!(r.root_tag("list"), Some(0x4c495354));
        assert_eq!(r.root_checked("list", 0x4c495354).unwrap(), a);
        assert!(matches!(
            r.root_checked("list", 0x54524545),
            Err(NvError::BadImage(_))
        ));
        assert!(matches!(
            r.root_checked("absent", 1),
            Err(NvError::RootNotFound(_))
        ));
        // Untagged roots report tag 0.
        r.set_root("plain", a).unwrap();
        assert_eq!(r.root_tag("plain"), Some(0));
        assert_eq!(r.root_tag("absent"), None);
        r.close().unwrap();
    }

    #[test]
    fn tagged_root_survives_reopen() {
        let path = tmpdir().join("tagged.nvr");
        {
            let r = Region::create_file(&path, 1 << 20).unwrap();
            let a = r.alloc(64, 8).unwrap().as_ptr() as usize;
            r.set_root_tagged("x", a, 77).unwrap();
            r.close().unwrap();
        }
        let r = Region::open_file(&path).unwrap();
        assert_eq!(r.root_tag("x"), Some(77));
        r.root_checked("x", 77).unwrap();
        r.close().unwrap();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn root_directory_limits() {
        let r = Region::create(1 << 20).unwrap();
        let a = r.alloc(64, 8).unwrap().as_ptr() as usize;
        assert!(matches!(
            r.set_root(&"x".repeat(32), a),
            Err(NvError::RootNameTooLong(_))
        ));
        for i in 0..MAX_ROOTS {
            r.set_root(&format!("r{i}"), a).unwrap();
        }
        assert!(matches!(
            r.set_root("overflow", a),
            Err(NvError::RootDirectoryFull)
        ));
        r.close().unwrap();
    }

    #[test]
    fn file_region_persists_and_reopens_at_new_address() {
        let path = tmpdir().join("persist.nvr");
        let (rid, old_base, off);
        {
            let r = Region::create_file(&path, 1 << 20).unwrap();
            rid = r.rid();
            old_base = r.base();
            let p = r.alloc(64, 8).unwrap();
            unsafe { (p.as_ptr() as *mut u64).write(0xfeed_f00d) };
            off = r.offset_of(p.as_ptr() as usize).unwrap();
            r.set_root("value", p.as_ptr() as usize).unwrap();
            r.close().unwrap();
        }
        let r = Region::open_file(&path).unwrap();
        assert_eq!(r.rid(), rid);
        assert!(!r.was_dirty(), "clean close recorded");
        // With 255 free segments the odds of landing on the same base are
        // 1/255; retry once if it happens.
        if r.base() == old_base {
            let p2 = r.root("value").unwrap();
            assert_eq!(unsafe { *(p2 as *const u64) }, 0xfeed_f00d);
            r.close().unwrap();
            let r2 = Region::open_file(&path).unwrap();
            assert_eq!(r2.root_off("value").unwrap(), off);
            r2.close().unwrap();
        } else {
            assert_eq!(r.root_off("value").unwrap(), off);
            let p2 = r.root("value").unwrap();
            assert_eq!(unsafe { *(p2 as *const u64) }, 0xfeed_f00d);
            r.close().unwrap();
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn crash_leaves_dirty_flag() {
        let path = tmpdir().join("crash.nvr");
        {
            let r = Region::create_file(&path, 1 << 20).unwrap();
            r.sync().unwrap();
            r.crash();
        }
        let r = Region::open_file(&path).unwrap();
        assert!(r.was_dirty());
        r.close().unwrap();
        let r = Region::open_file(&path).unwrap();
        assert!(!r.was_dirty(), "clean close resets the flag");
        r.close().unwrap();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn double_open_same_rid_rejected() {
        let path = tmpdir().join("dup.nvr");
        let r = Region::create_file(&path, 1 << 20).unwrap();
        let err = Region::open_file(&path).unwrap_err();
        assert!(matches!(err, NvError::InvalidRid { .. }));
        r.close().unwrap();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn open_rejects_garbage_image() {
        let path = tmpdir().join("garbage.nvr");
        std::fs::write(&path, vec![0u8; 4096]).unwrap();
        assert!(matches!(
            Region::open_file(&path),
            Err(NvError::BadImage(_))
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn cow_open_does_not_touch_file() {
        let path = tmpdir().join("cow.nvr");
        {
            let r = Region::create_file(&path, 1 << 20).unwrap();
            let p = r.alloc(64, 8).unwrap();
            unsafe { (p.as_ptr() as *mut u64).write(111) };
            r.set_root("v", p.as_ptr() as usize).unwrap();
            r.close().unwrap();
        }
        let before = std::fs::read(&path).unwrap();
        {
            let r = Region::open_file_cow(&path).unwrap();
            let v = r.root("v").unwrap();
            unsafe { (v as *mut u64).write(222) };
            r.close().unwrap();
        }
        let after = std::fs::read(&path).unwrap();
        assert_eq!(
            before, after,
            "MAP_PRIVATE session must not modify the image"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn closed_region_rejects_operations() {
        let r = Region::create(1 << 20).unwrap();
        let r2 = r.clone();
        r.close().unwrap();
        assert!(matches!(r2.alloc(64, 8), Err(NvError::RegionClosed { .. })));
    }

    #[test]
    fn alloc_too_big_for_region_fails() {
        let r = Region::create(1 << 16).unwrap();
        assert!(matches!(
            r.alloc(1 << 17, 8),
            Err(NvError::OutOfMemory { .. })
        ));
        r.close().unwrap();
    }

    #[test]
    fn dealloc_recycles_memory() {
        let r = Region::create(1 << 20).unwrap();
        let p1 = r.alloc(256, 8).unwrap();
        unsafe { r.dealloc(p1, 256) };
        let p2 = r.alloc(256, 8).unwrap();
        assert_eq!(p1, p2);
        r.close().unwrap();
    }

    #[test]
    fn user_tag_roundtrips_through_file() {
        let path = tmpdir().join("tag.nvr");
        {
            let r = Region::create_file(&path, 1 << 20).unwrap();
            r.set_user_tag(0xC0FFEE);
            r.close().unwrap();
        }
        let r = Region::open_file(&path).unwrap();
        assert_eq!(r.user_tag(), 0xC0FFEE);
        r.close().unwrap();
        std::fs::remove_file(&path).ok();
    }
}
