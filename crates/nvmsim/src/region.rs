//! NVRegions: the loading unit of the simulated NVM (Section 2.2).
//!
//! A region is a contiguous span of memory mapped into a run of NV chunks.
//! Its first bytes hold a [`RegionHeader`] — magic, version, region ID, the
//! named-root directory, and the embedded allocator state — all expressed
//! position-independently (offsets only), so a persisted image can be
//! remapped at *any* chunk-run base in a later run. Reopening a file-backed
//! region picks a random free run, which is how the experiments exercise
//! position independence: every reopen lands the data somewhere new, exactly
//! like address-space randomization would.
//!
//! Regions are created with a *capacity* (virtually reserved, defaulting to
//! the size) and can grow in place up to it via [`Region::grow`]: new chunks
//! of the already-acquired run are committed on demand, the embedded
//! allocator's frontier is extended, and the translation tables never
//! change — RIV values keep resolving across the growth.

use crate::alloc::{class_for, AllocHeader, AllocStats, CLASS_SIZES, NUM_CLASSES};
use crate::error::{NvError, Result};
use crate::latency;
use crate::llalloc::{ClassOccupancy, LlState};
use crate::magazine::{self, LocalStats, ThreadCache, REFILL_BATCH};
use crate::mem::{align_up, page_size};
use crate::nvspace::{ChunkRun, NvSpace};
use crate::registry;
use crate::shadow::{self, FaultPolicy, FaultReport, FaultStamp};
use crate::verify::{self, VerifyReport};
use parking_lot::Mutex;
use std::fs::{File, OpenOptions};
use std::io::Read;
use std::path::{Path, PathBuf};
use std::ptr::NonNull;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Magic number identifying a region image ("NVPIRGN1").
pub const REGION_MAGIC: u64 = u64::from_le_bytes(*b"NVPIRGN1");
/// Current on-media format version (v2 added the checksummed A/B
/// metadata slots between the header and the data area; v3 added the
/// reserved capacity for in-place growth over a chunk run).
pub const HEADER_VERSION: u32 = 3;
/// Maximum number of named roots per region.
pub const MAX_ROOTS: usize = 16;
/// Maximum root name length in bytes (NUL-padded storage).
pub const ROOT_NAME_CAP: usize = 31;
/// Number of checksummed metadata slots trailing the header (A/B pair).
pub const META_SLOT_COUNT: usize = 2;
/// Bytes reserved per metadata slot: the header snapshot plus a sequence
/// number and a CRC-64, padded for alignment.
pub const META_SLOT_SIZE: usize = 1024;

const FLAG_DIRTY: u64 = 1;

#[repr(C)]
#[derive(Clone, Copy, Debug)]
pub(crate) struct RootEntry {
    pub(crate) name: [u8; ROOT_NAME_CAP + 1],
    pub(crate) offset: u64,
    pub(crate) type_tag: u64,
}

/// On-media region header. Lives at offset 0 of the mapped segment.
#[repr(C)]
#[derive(Debug)]
pub struct RegionHeader {
    pub(crate) magic: u64,
    pub(crate) version: u32,
    pub(crate) rid: u32,
    pub(crate) size: u64,
    pub(crate) flags: u64,
    pub(crate) user_tag: u64,
    /// Reserved (virtual) size in bytes: the region may [`Region::grow`]
    /// in place up to this without remapping. Always a whole number of
    /// chunks, and at least `size`.
    pub(crate) capacity: u64,
    pub(crate) roots: [RootEntry; MAX_ROOTS],
    pub(crate) alloc: AllocHeader,
    /// Record of the last injected crash (see [`crate::shadow`]); all
    /// zeroes until a fault-injected crash image stamps it.
    pub(crate) fault: FaultStamp,
}

impl RegionHeader {
    /// Offset of the first A/B metadata slot (just past the header,
    /// cache-line aligned). Slot `i` lives at
    /// `meta_slots_off() + i * META_SLOT_SIZE`.
    pub fn meta_slots_off() -> u64 {
        align_up(std::mem::size_of::<RegionHeader>(), 64) as u64
    }

    /// Offset of the first allocatable byte in a region (past the header
    /// and the metadata slots).
    pub fn data_start() -> u64 {
        Self::meta_slots_off() + (META_SLOT_COUNT * META_SLOT_SIZE) as u64
    }

    /// Bytes of the header covered by a metadata-slot snapshot: magic
    /// through allocator state. The trailing [`FaultStamp`] is diagnostic
    /// only and deliberately excluded, so this equals
    /// [`RegionHeader::fault_stamp_offset`].
    pub fn snapshot_len() -> usize {
        Self::fault_stamp_offset() as usize
    }

    /// Offset of the [`FaultStamp`] within the header (it is the last
    /// field, and every field is 8-aligned, so there is no tail padding).
    pub fn fault_stamp_offset() -> u64 {
        (std::mem::size_of::<RegionHeader>() - std::mem::size_of::<FaultStamp>()) as u64
    }
}

// A slot must hold the snapshot plus its trailing {seq, crc} pair.
const _: () = assert!(
    std::mem::size_of::<RegionHeader>() - std::mem::size_of::<FaultStamp>() + 16 <= META_SLOT_SIZE
);

#[derive(Debug)]
enum Backing {
    Anonymous,
    File {
        file: File,
        path: PathBuf,
        shared: bool,
    },
}

/// Source of unique per-open-session ids: region ids are reused across
/// close/reopen, so thread-local caches key on these instead.
static NEXT_INSTANCE: AtomicU64 = AtomicU64::new(1);

fn seed_stats(s: &AllocStats) -> LocalStats {
    LocalStats {
        live_bytes: s.live_bytes as i64,
        live_allocs: s.live_allocs as i64,
        alloc_calls: s.alloc_calls,
        free_calls: s.free_calls,
        cached_bytes: 0,
        cached_blocks: 0,
    }
}

#[derive(Debug)]
pub(crate) struct Inner {
    space: &'static NvSpace,
    rid: u32,
    /// The chunk run backing this region; covers `capacity` bytes.
    run: ChunkRun,
    base: usize,
    /// Committed size in bytes. Grows monotonically (up to `capacity`)
    /// under `alloc_lock`; read with `Acquire` so any thread that sees a
    /// grown size also sees the newly committed memory.
    size: AtomicUsize,
    /// Reserved ceiling for in-place growth (whole chunks).
    capacity: usize,
    was_dirty: bool,
    backing: Backing,
    alloc_lock: Mutex<()>,
    closed: AtomicBool,
    /// Unique id of this open session (see [`NEXT_INSTANCE`]).
    instance: u64,
    /// Whether class-sized allocations may use per-thread magazines.
    magazines: AtomicBool,
    /// Whether class-sized allocations use the lock-free two-level
    /// allocator (the default whenever `ll` is present).
    lockfree: AtomicBool,
    /// Volatile state of the two-level bitmap allocator; `None` for
    /// legacy images (no bitmap directory) and regions too small to
    /// host a bitmap page.
    ll: Option<LlState>,
    /// Every live thread cache of this region, so close can drain them,
    /// statistics can aggregate them, and out-of-memory refills can
    /// reclaim cached blocks.
    caches: Mutex<Vec<Arc<ThreadCache>>>,
    /// Statistics of exited threads and of locked slow-path operations —
    /// the aggregation base the per-thread shards are summed onto. Only
    /// touched under `alloc_lock`.
    retired: Mutex<LocalStats>,
}

/// Handle to an open NVRegion.
///
/// Cloning the handle is cheap (it is an `Arc`); the region closes when
/// [`Region::close`] is called or the last handle drops.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), nvmsim::NvError> {
/// use nvmsim::Region;
///
/// let region = Region::create(1 << 20)?;
/// let p = region.alloc(64, 8)?;
/// region.set_root("head", p.as_ptr() as usize)?;
/// assert_eq!(region.root("head").unwrap(), p.as_ptr() as usize);
/// region.close()?;
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct Region {
    inner: Arc<Inner>,
}

impl Region {
    /// Creates an anonymous (non-durable) region of `size` bytes with an
    /// automatically assigned region ID.
    ///
    /// # Errors
    ///
    /// Fails if no chunk run or region ID is available, or `size` exceeds
    /// the maximum region size.
    pub fn create(size: usize) -> Result<Region> {
        Self::create_with_capacity(size, size)
    }

    /// Creates an anonymous region of `size` bytes that can [`Region::grow`]
    /// in place up to `capacity` bytes: a chunk run covering `capacity` is
    /// reserved (virtual address space only), but just `size` bytes are
    /// committed.
    ///
    /// # Errors
    ///
    /// As [`Region::create`]; additionally if `capacity` exceeds the
    /// layout's maximum region size.
    pub fn create_with_capacity(size: usize, capacity: usize) -> Result<Region> {
        let space = NvSpace::global();
        let rid = auto_rid(space)?;
        Self::build(space, rid, size, capacity, None)
    }

    /// Creates an anonymous region with an explicit region ID.
    ///
    /// # Errors
    ///
    /// As [`Region::create`]; additionally [`NvError::InvalidRid`] if `rid`
    /// is out of range or already open.
    pub fn create_with_rid(rid: u32, size: usize) -> Result<Region> {
        Self::build(NvSpace::global(), rid, size, size, None)
    }

    /// Creates a durable, file-backed region of `size` bytes at `path`.
    /// The file is created (truncated if it exists) and sized immediately.
    ///
    /// # Errors
    ///
    /// As [`Region::create`], plus I/O errors creating the file.
    pub fn create_file<P: AsRef<Path>>(path: P, size: usize) -> Result<Region> {
        Self::create_file_with_capacity(path, size, size)
    }

    /// Creates a durable, file-backed region of `size` bytes growable in
    /// place up to `capacity` (see [`Region::create_with_capacity`]; the
    /// file holds only the committed `size` bytes and is extended as the
    /// region grows).
    ///
    /// # Errors
    ///
    /// As [`Region::create_file`].
    pub fn create_file_with_capacity<P: AsRef<Path>>(
        path: P,
        size: usize,
        capacity: usize,
    ) -> Result<Region> {
        let space = NvSpace::global();
        let rid = auto_rid(space)?;
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path.as_ref())?;
        file.set_len(size as u64)?;
        let backing = Backing::File {
            file,
            path: path.as_ref().to_path_buf(),
            shared: true,
        };
        Self::build(space, rid, size, capacity, Some(backing))
    }

    /// Creates a durable, file-backed region with an explicit region ID.
    ///
    /// # Errors
    ///
    /// As [`Region::create_file`].
    pub fn create_file_with_rid<P: AsRef<Path>>(path: P, rid: u32, size: usize) -> Result<Region> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path.as_ref())?;
        file.set_len(size as u64)?;
        let backing = Backing::File {
            file,
            path: path.as_ref().to_path_buf(),
            shared: true,
        };
        Self::build(NvSpace::global(), rid, size, size, Some(backing))
    }

    fn build(
        space: &'static NvSpace,
        rid: u32,
        size: usize,
        capacity: usize,
        backing: Option<Backing>,
    ) -> Result<Region> {
        let layout = space.layout();
        if !layout.rid_in_range(rid) {
            return Err(NvError::InvalidRid {
                rid,
                reason: "out of range for layout",
            });
        }
        let capacity = capacity.max(size);
        if size < RegionHeader::data_start() as usize + 64 || capacity > layout.max_region_size() {
            return Err(NvError::BadImage(format!(
                "region geometry size {size} / capacity {capacity} outside [{}, {}]",
                RegionHeader::data_start() as usize + 64,
                layout.max_region_size()
            )));
        }
        let chunks = layout.chunks_for(capacity) as u32;
        let run = space.acquire_chunks(chunks)?;
        // The reserved ceiling is the whole run: capacity rounds up to
        // chunk granularity so the header never promises less than the
        // address space actually held.
        let capacity = chunks as usize * layout.chunk_size();
        let base = space.chunk_base(run.start);
        let commit = match &backing {
            Some(Backing::File { file, shared, .. }) => {
                space.commit_range_file(base, size, file, 0, *shared)
            }
            _ => space.commit_range_anon(base, size),
        };
        if let Err(e) = commit {
            space.release_chunks(run);
            return Err(e);
        }
        let cleanup = || {
            let _ = space.decommit_range(base, capacity);
            space.release_chunks(run);
        };
        if let Err(e) = space.bind(rid, run) {
            cleanup();
            return Err(e);
        }
        // SAFETY: the run is committed read/write for at least `size`
        // bytes; we own it exclusively until the handle is shared.
        unsafe {
            let hdr = &mut *(base as *mut RegionHeader);
            hdr.magic = REGION_MAGIC;
            hdr.version = HEADER_VERSION;
            hdr.rid = rid;
            hdr.size = size as u64;
            hdr.flags = FLAG_DIRTY;
            hdr.user_tag = 0;
            hdr.capacity = capacity as u64;
            hdr.roots = [RootEntry {
                name: [0; ROOT_NAME_CAP + 1],
                offset: 0,
                type_tag: 0,
            }; MAX_ROOTS];
            hdr.alloc.init(RegionHeader::data_start(), size as u64);
            hdr.fault = FaultStamp::default();
        }
        let instance = NEXT_INSTANCE.fetch_add(1, Ordering::Relaxed);
        // Format the first bitmap page of the two-level allocator before
        // the slot-A seed below, so even the seed snapshot carries the
        // directory offset. Volatile maps are sized for `capacity` so the
        // allocator can follow in-place growth without reallocation.
        // SAFETY: the region is still owned exclusively; `hdr.alloc` was
        // just initialized for this base/size.
        let ll = unsafe {
            let hdr = &mut *(base as *mut RegionHeader);
            LlState::create(base, capacity, instance, &mut hdr.alloc)
        };
        let inner = Inner {
            space,
            rid,
            run,
            base,
            size: AtomicUsize::new(size),
            capacity,
            was_dirty: false,
            backing: backing.unwrap_or(Backing::Anonymous),
            alloc_lock: Mutex::new(()),
            closed: AtomicBool::new(false),
            instance,
            magazines: AtomicBool::new(true),
            lockfree: AtomicBool::new(ll.is_some()),
            ll,
            caches: Mutex::new(Vec::new()),
            retired: Mutex::new(LocalStats::default()),
        };
        // Seed slot A so even a never-synced image has one valid
        // checksummed snapshot to recover from.
        inner.write_meta_slot();
        registry::register(rid, base, size);
        Ok(Region {
            inner: Arc::new(inner),
        })
    }

    /// Opens an existing region image, mapping it writably (`MAP_SHARED`)
    /// at a fresh random segment.
    ///
    /// # Errors
    ///
    /// [`NvError::BadImage`] if validation fails, [`NvError::InvalidRid`] if
    /// the image's region ID is already open, plus I/O errors.
    pub fn open_file<P: AsRef<Path>>(path: P) -> Result<Region> {
        Self::open_impl(path.as_ref(), true)
    }

    /// [`Region::open_file`], but guarantees the mapping lands at a base
    /// address different from `avoid`. The region server's eviction-remap
    /// and failover paths use this so every reopen actually exercises
    /// position independence rather than accidentally landing back at the
    /// old base.
    ///
    /// If the first mapping collides with `avoid`, it is torn down with
    /// [`Region::crash`] (never [`Region::close`] — a pending recovery
    /// must keep its dirty flag), the exact chunk run just vacated is
    /// pinned directly in the pool so the retry cannot land there, and
    /// the open is retried.
    ///
    /// # Errors
    ///
    /// As [`Region::open_file`], plus [`NvError::BadImage`] if no distinct
    /// base could be found after a bounded number of attempts.
    pub fn open_file_avoiding<P: AsRef<Path>>(path: P, avoid: usize) -> Result<Region> {
        let path = path.as_ref();
        let space = NvSpace::global();
        let mut pinned = Vec::new();
        let mut result = None;
        for _ in 0..8 {
            let r = Self::open_impl(path, true)?;
            if r.base() != avoid {
                result = Some(r);
                break;
            }
            let run = r.inner.run;
            // Tear down without clearing the dirty flag, then pin the
            // run we just vacated so the next attempt lands elsewhere.
            r.crash();
            if let Ok(pin) = space.acquire_chunks_at(run.start, run.count) {
                pinned.push(pin);
            }
        }
        for pin in pinned {
            space.release_chunks(pin);
        }
        result.ok_or_else(|| {
            NvError::BadImage(format!(
                "could not map {} away from base {avoid:#x} after 8 attempts",
                path.display()
            ))
        })
    }

    /// Opens an existing region image copy-on-write (`MAP_PRIVATE`): all
    /// modifications stay in this session and the file is untouched. Useful
    /// for read-mostly consumers and repeated benchmark runs.
    ///
    /// # Errors
    ///
    /// As [`Region::open_file`].
    pub fn open_file_cow<P: AsRef<Path>>(path: P) -> Result<Region> {
        Self::open_impl(path.as_ref(), false)
    }

    fn open_impl(path: &Path, shared: bool) -> Result<Region> {
        let space = NvSpace::global();
        let layout = space.layout();
        let mut file = OpenOptions::new().read(true).write(true).open(path)?;
        let flen = file.metadata()?.len();

        // Pre-validate the declared geometry against the actual file
        // length *before* mapping: a truncated or size-lying image must
        // yield a typed error, never an out-of-bounds mapping.
        let min_len = RegionHeader::data_start() + 64;
        if flen < min_len {
            return Err(NvError::BadImage(format!(
                "file of {flen} bytes is too small for a v{HEADER_VERSION} region (minimum {min_len})"
            )));
        }
        let mut head = [0u8; 48];
        file.read_exact(&mut head)?;
        let magic = u64::from_le_bytes(head[0..8].try_into().unwrap());
        let version = u32::from_le_bytes(head[8..12].try_into().unwrap());
        let rid = u32::from_le_bytes(head[12..16].try_into().unwrap());
        let size = u64::from_le_bytes(head[16..24].try_into().unwrap());
        let capacity = u64::from_le_bytes(head[40..48].try_into().unwrap());
        if magic != REGION_MAGIC {
            return Err(NvError::BadImage(format!("bad magic {magic:#x}")));
        }
        if version != HEADER_VERSION {
            return Err(NvError::BadImage(format!("unsupported version {version}")));
        }
        if size != flen {
            return Err(NvError::BadImage(format!(
                "header size {size} != file length {flen}"
            )));
        }
        let capacity = if capacity < size || capacity > layout.max_region_size() as u64 {
            // The primary capacity word is implausible — rotted or torn,
            // like any other header byte. The checksummed slots carry the
            // authoritative copy; a region that never grew its reservation
            // falls back to the file length (capacity == size there). The
            // corruption walk below repairs the primary itself.
            use std::io::Seek;
            let mut area = vec![0u8; RegionHeader::data_start() as usize];
            file.seek(std::io::SeekFrom::Start(0))?;
            file.read_exact(&mut area)?;
            match verify::slot_capacity(&area) {
                Some(c) if c >= size && c <= layout.max_region_size() as u64 => c,
                _ => size,
            }
        } else {
            capacity
        };
        if !layout.rid_in_range(rid) {
            return Err(NvError::InvalidRid {
                rid,
                reason: "out of range for layout",
            });
        }
        if space.is_bound(rid) {
            return Err(NvError::InvalidRid {
                rid,
                reason: "already open in this process",
            });
        }

        let size = size as usize;
        let chunks = layout.chunks_for(capacity as usize) as u32;
        let run = space.acquire_chunks(chunks)?;
        let capacity = chunks as usize * layout.chunk_size();
        let base = space.chunk_base(run.start);
        let cleanup = |run| {
            let _ = space.decommit_range(base, capacity);
            space.release_chunks(run);
        };
        if let Err(e) = space.commit_range_file(base, size, &file, 0, shared) {
            space.release_chunks(run);
            return Err(e);
        }
        // Full corruption walk: primary metadata (roots, allocator free
        // lists) plus both checksummed slots. A damaged primary is
        // restored from the newest valid slot; if that still does not
        // verify, the open fails with a typed error.
        // SAFETY: the image is mapped read/write and `size` bytes long.
        let bytes = unsafe { std::slice::from_raw_parts_mut(base as *mut u8, size) };
        let report = verify::verify_bytes(bytes);
        let primary_was_ok = report.primary_ok();
        let mut usable = primary_was_ok;
        if primary_was_ok {
            if report.clean && report.slots_agree && report.primary_matches_active == Some(false) {
                // Clean close converges both slots onto the final
                // snapshot, so agreeing slots that differ from a clean,
                // structurally-valid primary mean the primary rotted
                // after the close: restore the checksummed copy. (On a
                // dirty image the primary may legitimately be newer than
                // the last slot write, so no such repair is attempted.)
                if let Some(s) = report.active_slot {
                    verify::restore_slot(bytes, s);
                    usable = verify::verify_bytes(bytes).primary_ok();
                }
            }
        } else if let Some(s) = report.active_slot {
            verify::restore_slot(bytes, s);
            usable = verify::verify_bytes(bytes).primary_ok();
        }
        if !usable {
            cleanup(run);
            return Err(NvError::BadImage(format!(
                "unrecoverable image: {}",
                report.damage_summary()
            )));
        }
        // A slot restore rewrites the identity words; re-check them
        // against what was validated pre-map.
        // SAFETY: header is mapped read/write and still owned exclusively.
        let hdr_now = unsafe { &mut *(base as *mut RegionHeader) };
        if hdr_now.rid != rid || hdr_now.size != flen {
            cleanup(run);
            return Err(NvError::BadImage(format!(
                "metadata slot disagrees with the boot block (rid {} vs {rid}, size {} vs {flen})",
                hdr_now.rid, hdr_now.size
            )));
        }
        if (hdr_now.capacity as u64) < flen || hdr_now.capacity as usize > layout.max_region_size()
        {
            // The capacity word is still rot (a dirty image keeps its
            // primary even when a slot exists): pin it to the run that was
            // actually reserved from the sanitized pre-map value.
            hdr_now.capacity = capacity as u64;
        }
        if hdr_now.capacity as usize > capacity {
            // A restored slot must not promise more growth room than the
            // run acquired from the boot block actually reserves.
            cleanup(run);
            return Err(NvError::BadImage(format!(
                "metadata slot claims capacity {} beyond the reserved run ({capacity})",
                hdr_now.capacity
            )));
        }
        if let Err(e) = space.bind(rid, run) {
            cleanup(run);
            return Err(e);
        }
        // A primary that had to be rebuilt from a slot counts as dirty:
        // the snapshot may predate the damage, so recovery layers must
        // run regardless of what the restored flags claim.
        let was_dirty = hdr_now.flags & FLAG_DIRTY != 0 || !primary_was_ok;
        // Mark dirty for the duration of this writable session.
        // SAFETY: header is mapped read/write.
        unsafe {
            (*(base as *mut RegionHeader)).flags |= FLAG_DIRTY;
        }
        // Seed the volatile counters from the persisted image; blocks a
        // previous session leaked in magazines are simply live (and thus
        // reclaimable only by their owner structure, as for any leak).
        // SAFETY: the image is mapped and its header was just validated.
        let persisted = unsafe { (*(base as *const RegionHeader)).alloc.stats() };
        let instance = NEXT_INSTANCE.fetch_add(1, Ordering::Relaxed);
        // Recovery scan of the two-level allocator: one bounded pass over
        // the bitmap pages rebuilds the free counters and granule map.
        // Structural damage degrades to the legacy allocator — the open
        // still succeeds, and `verify()` reports what is wrong.
        // SAFETY: the image is mapped read/write and owned exclusively
        // until the handle is shared.
        let ll = unsafe {
            LlState::open(
                base,
                capacity,
                size,
                instance,
                &(*(base as *const RegionHeader)).alloc,
            )
            .unwrap_or(None)
        };
        // The persisted counters include the bitmap contribution *as of
        // the fold that wrote them*; that snapshot (not the open-time
        // popcount — after a crash the two differ by the unfolded ops)
        // is what gets backed out, leaving the legacy remainder as the
        // retired base. The live aggregate then re-adds the open-time
        // bitmap truth via `LlState::stat_live`, so blocks allocated or
        // freed after the last fold are accounted exactly.
        let mut seeded = seed_stats(&persisted);
        if let Some(ll) = &ll {
            let (blocks, bytes) = ll.folded_live();
            seeded.live_allocs -= blocks as i64;
            seeded.live_bytes -= bytes as i64;
        }
        let inner = Inner {
            space,
            rid,
            run,
            base,
            size: AtomicUsize::new(size),
            capacity,
            was_dirty,
            backing: Backing::File {
                file,
                path: path.to_path_buf(),
                shared,
            },
            alloc_lock: Mutex::new(()),
            closed: AtomicBool::new(false),
            instance,
            magazines: AtomicBool::new(true),
            lockfree: AtomicBool::new(ll.is_some()),
            ll,
            caches: Mutex::new(Vec::new()),
            retired: Mutex::new(seeded),
        };
        registry::register(rid, base, size);
        Ok(Region {
            inner: Arc::new(inner),
        })
    }

    /// This region's ID.
    pub fn rid(&self) -> u32 {
        self.inner.rid
    }

    /// Current base address of the mapping.
    pub fn base(&self) -> usize {
        self.inner.base
    }

    /// Committed region size in bytes (grows via [`Region::grow`]).
    pub fn size(&self) -> usize {
        self.inner.len()
    }

    /// Reserved (virtual) ceiling for in-place growth, in bytes. Always a
    /// whole number of chunks and at least [`Region::size`].
    pub fn capacity(&self) -> usize {
        self.inner.capacity
    }

    /// The chunk run backing this region.
    pub fn chunk_run(&self) -> ChunkRun {
        self.inner.run
    }

    /// Whether the image was not cleanly closed before this open — i.e. a
    /// crash (real or simulated) happened. Recovery layers (see `pstore`)
    /// consult this.
    pub fn was_dirty(&self) -> bool {
        self.inner.was_dirty
    }

    /// Whether `addr` falls inside this region's current mapping.
    pub fn contains(&self, addr: usize) -> bool {
        addr >= self.inner.base && addr < self.inner.base + self.inner.len()
    }

    /// Grows the region in place to `new_size` bytes.
    ///
    /// The newly committed bytes are zero, the embedded allocator's
    /// frontier extends over them, and neither the base address nor any
    /// existing pointer or RIV changes: the chunk run reserved at
    /// creation already covers [`Region::capacity`], so growth is pure
    /// commit + bookkeeping — the paper's translation tables are not
    /// touched. File-backed (shared) regions extend their image file
    /// first; copy-on-write sessions commit anonymous memory, keeping the
    /// file untouched. A `new_size` at or below the current size is a
    /// no-op.
    ///
    /// # Errors
    ///
    /// [`NvError::OutOfMemory`] past [`Region::capacity`],
    /// [`NvError::BadImage`] while a replication source is attached (the
    /// stream format pins the region size per session),
    /// [`NvError::RegionClosed`] after close, plus commit/file I/O errors.
    pub fn grow(&self, new_size: usize) -> Result<usize> {
        self.check_open()?;
        let _g = self.inner.alloc_lock.lock();
        if self.inner.closed.load(Ordering::Acquire) {
            return Err(NvError::RegionClosed {
                rid: self.inner.rid,
            });
        }
        let old = self.inner.len();
        if new_size <= old {
            return Ok(old);
        }
        if new_size > self.inner.capacity {
            return Err(NvError::OutOfMemory {
                region: self.inner.rid,
                requested: new_size,
            });
        }
        if shadow::repl_attached(self.inner.base) {
            return Err(NvError::BadImage(
                "cannot grow a region while a replication source is attached".to_string(),
            ));
        }
        let base = self.inner.base;
        let page = page_size();
        // Pages up to align_up(old) are already committed; extend the
        // mapping from there. (Growth within the last committed page only
        // needs the bookkeeping below.)
        let lo = align_up(old, page);
        let hi = align_up(new_size, page);
        match &self.inner.backing {
            Backing::File {
                file, shared: true, ..
            } => {
                // Extend the image first so the new mapping never points
                // past the end of the file (a store there would SIGBUS).
                file.set_len(new_size as u64)?;
                if hi > lo {
                    self.inner.space.commit_range_file(
                        base + lo,
                        hi - lo,
                        file,
                        lo as u64,
                        true,
                    )?;
                }
            }
            _ => {
                // Anonymous regions and copy-on-write sessions get zeroed
                // anonymous pages; a COW file is never touched.
                if hi > lo {
                    self.inner.space.commit_range_anon(base + lo, hi - lo)?;
                }
            }
        }
        // Memory is committed: publish the new size (Release pairs with
        // the Acquire loads in `len`), then extend the durable metadata.
        self.inner.size.store(new_size, Ordering::Release);
        // SAFETY: lock held; region mapped while the handle exists.
        let hdr = unsafe { self.header_mut() };
        hdr.size = new_size as u64;
        hdr.alloc.extend(new_size as u64);
        // A tracked region's shadow state must cover the new bytes before
        // any instrumented store lands there.
        shadow::grow_region(base, new_size);
        // Persist the rewritten geometry words (size, allocator end) so a
        // crash image captured after the grow reopens at the new length:
        // growth is rare, so one coarse flush of the header snapshot area
        // is fine.
        let snap = RegionHeader::snapshot_len();
        shadow::track_store(base, snap);
        latency::clflush_range(base, snap);
        latency::wbarrier();
        // The geometry words changed durably: reseal a metadata slot.
        self.inner.write_meta_slot();
        registry::register(self.inner.rid, base, new_size);
        crate::metrics::incr(crate::metrics::Counter::RegionGrows);
        Ok(new_size)
    }

    fn check_open(&self) -> Result<()> {
        if self.inner.closed.load(Ordering::Acquire) {
            return Err(NvError::RegionClosed {
                rid: self.inner.rid,
            });
        }
        Ok(())
    }

    #[allow(clippy::mut_from_ref)]
    unsafe fn header_mut(&self) -> &mut RegionHeader {
        &mut *(self.inner.base as *mut RegionHeader)
    }

    fn header(&self) -> &RegionHeader {
        // SAFETY: the header is mapped for the lifetime of the handle.
        unsafe { &*(self.inner.base as *const RegionHeader) }
    }

    /// Allocates `size` bytes (alignment `align`, at most 16) inside the
    /// region and returns its absolute address for this session.
    ///
    /// # Errors
    ///
    /// [`NvError::OutOfMemory`] when the region is full,
    /// [`NvError::RegionClosed`] after close.
    pub fn alloc(&self, size: usize, align: usize) -> Result<NonNull<u8>> {
        let off = self.alloc_off(size, align)?;
        // SAFETY: the offset is inside the mapped region and nonzero.
        Ok(unsafe { NonNull::new_unchecked((self.inner.base + off as usize) as *mut u8) })
    }

    /// Like [`Region::alloc`] but returns the position-independent offset.
    ///
    /// Class-sized requests are served from the calling thread's magazine
    /// (see [`crate::magazine`]) and normally never touch the region lock;
    /// large requests and threads without usable thread-local storage fall
    /// back to the locked allocator.
    ///
    /// # Errors
    ///
    /// As [`Region::alloc`].
    pub fn alloc_off(&self, size: usize, align: usize) -> Result<u64> {
        // Allocator internals flush while holding the allocation lock
        // (the lock-free core's grow() formats bitmap pages under it); a
        // seeded-schedule context switch in there would deadlock the
        // token passing, so the whole allocation is one uninterruptible
        // scheduling step — its flushes still count as shadow events.
        // See `crate::sched`.
        crate::sched::with_yields_suppressed(|| self.alloc_off_inner(size, align))
    }

    fn alloc_off_inner(&self, size: usize, align: usize) -> Result<u64> {
        self.check_open()?;
        crate::metrics::incr(crate::metrics::Counter::RegionAllocs);
        assert!(size > 0, "zero-size allocation");
        assert!(
            align <= crate::alloc::MIN_ALIGN
                && crate::alloc::MIN_ALIGN.is_multiple_of(align.max(1)),
            "alignment beyond {} is not supported",
            crate::alloc::MIN_ALIGN
        );
        let rounded = AllocHeader::rounded_size(size);
        if let Some(class) = class_for(rounded) {
            if self.inner.lockfree.load(Ordering::Relaxed) {
                if let Some(ll) = &self.inner.ll {
                    return self.alloc_lockfree(ll, class, size, align, rounded);
                }
            }
            if self.inner.magazines.load(Ordering::Relaxed) {
                if let Some(res) =
                    magazine::with_cache(&self.inner, |cache| self.alloc_cached(cache, class))
                {
                    return res;
                }
            }
        }
        self.alloc_slow(size, align, rounded)
    }

    /// Lock-free fast path: CAS a bit in the thread's reserved subtree
    /// (see [`crate::llalloc`]). Exhaustion grows a fresh subtree from
    /// the bump frontier under the region lock; when the frontier is dry
    /// too, the legacy free lists (pre-bitmap blocks, reclaimed
    /// magazines) are the last resort before out-of-memory.
    fn alloc_lockfree(
        &self,
        ll: &LlState,
        class: usize,
        size: usize,
        align: usize,
        rounded: usize,
    ) -> Result<u64> {
        loop {
            if let Some(off) = ll.alloc(class) {
                return Ok(off);
            }
            {
                let _g = self.inner.alloc_lock.lock();
                if self.inner.closed.load(Ordering::Acquire) {
                    return Err(NvError::RegionClosed {
                        rid: self.inner.rid,
                    });
                }
                // SAFETY: lock held; region mapped while the handle exists.
                let hdr = unsafe { self.header_mut() };
                // SAFETY: as above; `ll` belongs to this region.
                if unsafe { ll.grow(&mut hdr.alloc, class) }.is_ok() {
                    // Another thread may drain the new subtree before we
                    // get a block out of it; loop until an allocation
                    // lands or growth itself fails.
                    continue;
                }
            }
            return self.alloc_slow(size, align, rounded);
        }
    }

    /// Magazine fast path: pop the thread's cache, refilling on miss. The
    /// hit path takes exactly one uncontended per-thread lock.
    fn alloc_cached(&self, cache: &ThreadCache, class: usize) -> Result<u64> {
        if let Some(off) = cache.inner.lock().take(class) {
            return Ok(off);
        }
        self.refill(cache, class)
    }

    /// Refills an empty magazine: one short critical section unlinks up to
    /// [`REFILL_BATCH`] blocks from the shared free list (bump frontier as
    /// fallback), serves the first and caches the rest.
    fn refill(&self, cache: &ThreadCache, class: usize) -> Result<u64> {
        crate::metrics::incr(crate::metrics::Counter::MagazineRefills);
        // Regions with bitmap pages refill from subtree reservations
        // first — whole-word CAS claims, no lock — and only fall back to
        // the mutex-guarded free lists when the bitmaps are dry.
        if let Some(ll) = &self.inner.ll {
            let mut batch = [0u64; REFILL_BATCH];
            let n = ll.carve_batch(class, &mut batch);
            if n > 0 {
                cache.inner.lock().stock(class, &batch[1..n]);
                return Ok(batch[0]);
            }
        }
        let _g = self.inner.alloc_lock.lock();
        if self.inner.closed.load(Ordering::Acquire) {
            return Err(NvError::RegionClosed {
                rid: self.inner.rid,
            });
        }
        // SAFETY: lock held, region mapped while the handle exists.
        let hdr = unsafe { self.header_mut() };
        let mut batch = [0u64; REFILL_BATCH];
        // SAFETY: base/header pair is this region's; see above.
        let mut n = unsafe { hdr.alloc.carve_batch(self.inner.base, class, &mut batch) };
        if n == 0 {
            // The shared allocator is dry, but other threads' magazines may
            // hold cached blocks: pull everything back and retry once.
            self.inner.reclaim_caches(&mut hdr.alloc);
            // SAFETY: as above.
            n = unsafe { hdr.alloc.carve_batch(self.inner.base, class, &mut batch) };
            if n == 0 {
                return Err(NvError::OutOfMemory {
                    region: self.inner.rid,
                    requested: CLASS_SIZES[class],
                });
            }
        }
        cache.inner.lock().stock(class, &batch[1..n]);
        self.inner.fold_counters(&mut hdr.alloc);
        Ok(batch[0])
    }

    /// Locked slow path: large sizes, magazines disabled, or no TLS.
    fn alloc_slow(&self, size: usize, align: usize, rounded: usize) -> Result<u64> {
        let _g = self.inner.alloc_lock.lock();
        // SAFETY: base is this region's base; the region stays mapped while
        // the handle exists.
        let hdr = unsafe { self.header_mut() };
        // SAFETY: as above.
        let mut res = unsafe { hdr.alloc.alloc(self.inner.base, size, align) };
        if res.is_err() {
            // Cached blocks of a suitable class may satisfy the request.
            self.inner.reclaim_caches(&mut hdr.alloc);
            // SAFETY: as above.
            res = unsafe { hdr.alloc.alloc(self.inner.base, size, align) };
        }
        match res {
            Ok(off) => {
                let mut retired = self.inner.retired.lock();
                retired.live_bytes += rounded as i64;
                retired.live_allocs += 1;
                retired.alloc_calls += 1;
                Ok(off)
            }
            Err(NvError::OutOfMemory { requested, .. }) => Err(NvError::OutOfMemory {
                region: self.inner.rid,
                requested,
            }),
            Err(other) => Err(other),
        }
    }

    /// Returns a block to the allocator.
    ///
    /// Class-sized blocks go onto the calling thread's magazine; when a
    /// magazine overflows, its cold half is restored to the shared free
    /// list under one short critical section.
    ///
    /// # Safety
    ///
    /// `ptr` must come from [`Region::alloc`] on this region with the same
    /// `size`, must not have been freed already, and no live references into
    /// the block may remain.
    pub unsafe fn dealloc(&self, ptr: NonNull<u8>, size: usize) {
        // One uninterruptible scheduling step, like `alloc_off`.
        crate::sched::with_yields_suppressed(|| self.dealloc_inner(ptr, size))
    }

    /// # Safety
    ///
    /// As [`Region::dealloc`].
    unsafe fn dealloc_inner(&self, ptr: NonNull<u8>, size: usize) {
        crate::metrics::incr(crate::metrics::Counter::RegionFrees);
        let off = (ptr.as_ptr() as usize - self.inner.base) as u64;
        let rounded = AllocHeader::rounded_size(size);
        // In lock-free mode, bitmap-owned blocks are cleared in place
        // with one CAS + flush: their spans never mix with free-list
        // blocks, so routing by granule is exact. In magazine mode the
        // block goes back on the thread's magazine instead (keeping the
        // reuse fast path and its accounting); drains restore it to the
        // bitmap later.
        if self.inner.lockfree.load(Ordering::Relaxed) {
            if let Some(ll) = &self.inner.ll {
                if ll.owns(off) && ll.free_block(off, true).is_some() {
                    return;
                }
            }
        }
        if let Some(class) = class_for(rounded) {
            if self.inner.magazines.load(Ordering::Relaxed) {
                let pushed =
                    magazine::with_cache(&self.inner, |cache| cache.inner.lock().put(class, off));
                if let Some(overflow) = pushed {
                    if let Some(cold) = overflow {
                        self.inner.restore_overflow(class, &cold);
                    }
                    return;
                }
            }
        }
        // Slow path (magazines off or no TLS): a bitmap-owned block
        // still must never reach the legacy free lists.
        if let Some(ll) = &self.inner.ll {
            if ll.owns(off) && ll.free_block(off, true).is_some() {
                return;
            }
        }
        let _g = self.inner.alloc_lock.lock();
        let hdr = self.header_mut();
        hdr.alloc.dealloc(self.inner.base, off, size);
        let mut retired = self.inner.retired.lock();
        retired.live_bytes -= rounded as i64;
        retired.live_allocs -= 1;
        retired.free_calls += 1;
    }

    /// Converts an absolute address inside this region to its offset.
    ///
    /// # Errors
    ///
    /// [`NvError::AddressOutOfRange`] if `addr` is outside the region.
    pub fn offset_of(&self, addr: usize) -> Result<u64> {
        if !self.contains(addr) {
            return Err(NvError::AddressOutOfRange { addr });
        }
        Ok((addr - self.inner.base) as u64)
    }

    /// Converts a region offset to the absolute address in this session.
    ///
    /// # Panics
    ///
    /// Debug-asserts the offset is within the region.
    pub fn ptr_at(&self, off: u64) -> usize {
        debug_assert!((off as usize) < self.inner.len());
        self.inner.base + off as usize
    }

    /// Allocator statistics, from the application's perspective: blocks
    /// cached in thread magazines count as free, not live. (The on-media
    /// header counts them as live until flushed — see [`crate::magazine`].)
    pub fn stats(&self) -> AllocStats {
        let _g = self.inner.alloc_lock.lock();
        let s = self.header().alloc.stats();
        let t = self.inner.aggregate_stats();
        let (ll_allocs, ll_frees, ll_blocks, ll_bytes) = self.inner.ll_totals();
        AllocStats {
            live_bytes: (t.live_bytes + ll_bytes).max(0) as u64,
            live_allocs: (t.live_allocs + ll_blocks).max(0) as u64,
            alloc_calls: t.alloc_calls + ll_allocs,
            free_calls: t.free_calls + ll_frees,
            bump: s.bump,
            end: s.end,
        }
    }

    /// Switches class-sized allocation between the lock-free two-level
    /// path (the default on regions that carry bitmap pages) and the
    /// legacy magazine/mutex path — the benchmark baseline. Frees of
    /// bitmap-owned blocks keep routing through the bitmaps regardless
    /// of the mode. No-op on legacy images.
    pub fn set_lockfree(&self, enabled: bool) {
        if self.inner.ll.is_some() {
            self.inner.lockfree.store(enabled, Ordering::Relaxed);
        }
    }

    /// Whether class-sized allocations currently use the lock-free
    /// two-level allocator.
    pub fn lockfree_enabled(&self) -> bool {
        self.inner.ll.is_some() && self.inner.lockfree.load(Ordering::Relaxed)
    }

    /// Per-class subtree occupancy of the two-level allocator; `None`
    /// for legacy images without bitmap pages.
    pub fn llalloc_occupancy(&self) -> Option<[ClassOccupancy; NUM_CLASSES]> {
        self.inner.ll.as_ref().map(|ll| ll.occupancy())
    }

    /// Enables or disables the per-thread magazine fast path for this
    /// region (enabled by default). Disabling flushes every thread's
    /// cached blocks back to the shared free lists, so the region behaves
    /// exactly like the single-lock allocator — the benchmark baseline.
    pub fn set_magazines(&self, enabled: bool) {
        self.inner.magazines.store(enabled, Ordering::Relaxed);
        if !enabled {
            let _ = self.flush_magazines();
        }
    }

    /// Whether the magazine fast path is enabled for this region.
    pub fn magazines_enabled(&self) -> bool {
        self.inner.magazines.load(Ordering::Relaxed)
    }

    /// Flushes every thread's magazines back to the shared free lists and
    /// folds the statistics counters into the persistent header. After
    /// this (and before further allocation), the on-media image has no
    /// blocks parked in volatile caches — a crash right now leaks nothing.
    ///
    /// # Errors
    ///
    /// [`NvError::RegionClosed`] after close.
    pub fn flush_magazines(&self) -> Result<()> {
        self.check_open()?;
        crate::metrics::incr(crate::metrics::Counter::MagazineFlushes);
        let _g = self.inner.alloc_lock.lock();
        if self.inner.closed.load(Ordering::Acquire) {
            return Err(NvError::RegionClosed {
                rid: self.inner.rid,
            });
        }
        // SAFETY: lock held; region mapped while the handle exists.
        let hdr = unsafe { self.header_mut() };
        self.inner.reclaim_caches(&mut hdr.alloc);
        self.inner.fold_counters(&mut hdr.alloc);
        // The fold changed durable allocator state: flip a metadata slot
        // so the checksummed snapshot keeps up with the primary.
        self.inner.write_meta_slot();
        Ok(())
    }

    /// An application-defined tag stored in the header (e.g. a schema id).
    pub fn user_tag(&self) -> u64 {
        self.header().user_tag
    }

    /// Sets the application-defined header tag.
    pub fn set_user_tag(&self, tag: u64) {
        // SAFETY: plain u64 store into the mapped header.
        unsafe { self.header_mut().user_tag = tag }
    }

    // -- roots ---------------------------------------------------------------

    /// Registers (or updates) a named root pointing at `addr`.
    ///
    /// # Errors
    ///
    /// [`NvError::RootNameTooLong`], [`NvError::RootDirectoryFull`], or
    /// [`NvError::AddressOutOfRange`] if `addr` is outside the region.
    pub fn set_root(&self, name: &str, addr: usize) -> Result<()> {
        let off = self.offset_of(addr)?;
        self.set_root_off(name, off)
    }

    /// Registers (or updates) a named root with an application-defined
    /// type tag, letting consumers validate what kind of structure the
    /// root leads before dereferencing it.
    ///
    /// # Errors
    ///
    /// As [`Region::set_root`].
    pub fn set_root_tagged(&self, name: &str, addr: usize, type_tag: u64) -> Result<()> {
        let off = self.offset_of(addr)?;
        self.set_root_off(name, off)?;
        let _g = self.inner.alloc_lock.lock();
        // SAFETY: header mapped; serialized by alloc_lock.
        let hdr = unsafe { self.header_mut() };
        for entry in hdr.roots.iter_mut() {
            if entry_matches(entry, name) {
                entry.type_tag = type_tag;
                break;
            }
        }
        Ok(())
    }

    /// The type tag recorded for a named root (0 if untagged).
    pub fn root_tag(&self, name: &str) -> Option<u64> {
        self.header()
            .roots
            .iter()
            .find(|e| entry_matches(e, name))
            .map(|e| e.type_tag)
    }

    /// Looks up a root and validates its type tag, returning the absolute
    /// address only when the tag matches.
    ///
    /// # Errors
    ///
    /// [`NvError::RootNotFound`] when absent; [`NvError::BadImage`] when
    /// the tag differs from `expected_tag`.
    pub fn root_checked(&self, name: &str, expected_tag: u64) -> Result<usize> {
        let addr = self
            .root(name)
            .ok_or_else(|| NvError::RootNotFound(name.to_string()))?;
        let tag = self.root_tag(name).unwrap_or(0);
        if tag != expected_tag {
            return Err(NvError::BadImage(format!(
                "root {name:?} has type tag {tag:#x}, expected {expected_tag:#x}"
            )));
        }
        Ok(addr)
    }

    /// Registers (or updates) a named root by offset.
    ///
    /// # Errors
    ///
    /// As [`Region::set_root`].
    pub fn set_root_off(&self, name: &str, off: u64) -> Result<()> {
        self.check_open()?;
        if name.len() > ROOT_NAME_CAP || name.is_empty() {
            return Err(NvError::RootNameTooLong(name.to_string()));
        }
        let _g = self.inner.alloc_lock.lock();
        // SAFETY: header is mapped; mutation serialized by alloc_lock.
        let hdr = unsafe { self.header_mut() };
        let mut free_slot = None;
        for (i, entry) in hdr.roots.iter().enumerate() {
            if entry.name[0] == 0 {
                free_slot.get_or_insert(i);
            } else {
                // A corrupt entry must not be silently shadowed or
                // clobbered: surface the damage instead.
                let existing = decode_root_name(entry)?;
                if existing == name {
                    hdr.roots[i].offset = off;
                    return Ok(());
                }
            }
        }
        let slot = free_slot.ok_or(NvError::RootDirectoryFull)?;
        let entry = &mut hdr.roots[slot];
        entry.name = [0; ROOT_NAME_CAP + 1];
        entry.name[..name.len()].copy_from_slice(name.as_bytes());
        entry.offset = off;
        entry.type_tag = 0;
        Ok(())
    }

    /// Absolute address of the named root in this session, if present.
    pub fn root(&self, name: &str) -> Option<usize> {
        self.root_off(name)
            .map(|off| self.inner.base + off as usize)
    }

    /// Offset of the named root, if present. Corrupt directory entries
    /// (undecodable name, offset outside the data area) match nothing;
    /// use [`Region::verify`] to surface them.
    pub fn root_off(&self, name: &str) -> Option<u64> {
        let hdr = self.header();
        hdr.roots
            .iter()
            .find(|e| entry_matches(e, name))
            .map(|e| e.offset)
            .filter(|&off| off >= RegionHeader::data_start() && off < self.inner.len() as u64)
    }

    /// Removes a named root. Returns whether it existed.
    pub fn remove_root(&self, name: &str) -> bool {
        let _g = self.inner.alloc_lock.lock();
        // SAFETY: serialized mutation of the mapped header.
        let hdr = unsafe { self.header_mut() };
        for entry in hdr.roots.iter_mut() {
            if entry_matches(entry, name) {
                entry.name = [0; ROOT_NAME_CAP + 1];
                entry.offset = 0;
                return true;
            }
        }
        false
    }

    /// Names of all registered roots.
    ///
    /// # Errors
    ///
    /// [`NvError::BadImage`] if any used directory entry fails to decode
    /// (corrupt name bytes) — the directory can then only be read through
    /// [`Region::verify`] / salvage.
    pub fn roots(&self) -> Result<Vec<String>> {
        self.header()
            .roots
            .iter()
            .filter(|e| e.name[0] != 0)
            .map(|e| decode_root_name(e).map(str::to_string))
            .collect()
    }

    // -- durability ----------------------------------------------------------

    /// Flushes a file-backed region's bytes to its image file. No-op for
    /// anonymous regions.
    ///
    /// # Errors
    ///
    /// Propagates `msync` failures.
    pub fn sync(&self) -> Result<()> {
        self.check_open()?;
        {
            // Fold the volatile counters so the flushed image carries
            // accurate statistics (magazine contents stay cached: sync is
            // a durability point, not a quiescent point).
            let _g = self.inner.alloc_lock.lock();
            if !self.inner.closed.load(Ordering::Acquire) {
                // SAFETY: lock held; region mapped while the handle exists.
                let hdr = unsafe { self.header_mut() };
                self.inner.fold_counters(&mut hdr.alloc);
                self.inner.write_meta_slot();
            }
        }
        if let Backing::File { shared: true, .. } = self.inner.backing {
            self.inner
                .space
                .sync_range(self.inner.base, self.inner.len())?;
        }
        // A full-image sync is a durability point: every line is now
        // persisted as far as the shadow tracker is concerned.
        shadow::checkpoint(self.inner.base);
        // Let an attached replication source ship the lines this
        // durability point made durable.
        crate::repl::on_durability_point(self.inner.base);
        Ok(())
    }

    /// Cleanly closes the region: clears the dirty flag, flushes (if
    /// durable), unmaps, and releases the segment and registry entries.
    ///
    /// # Errors
    ///
    /// Propagates flush/unmap failures; the region is unregistered either
    /// way.
    pub fn close(self) -> Result<()> {
        self.inner.teardown(true)
    }

    /// Simulates a crash: the mapping is torn down *without* clearing the
    /// dirty flag or issuing a final flush. A subsequent [`Region::open_file`]
    /// will report [`Region::was_dirty`] so recovery can run.
    pub fn crash(self) {
        let _ = self.inner.teardown(false);
    }

    /// Path of the backing file, if file-backed.
    pub fn path(&self) -> Option<&Path> {
        match &self.inner.backing {
            Backing::File { path, .. } => Some(path),
            Backing::Anonymous => None,
        }
    }

    // -- fault injection -----------------------------------------------------

    /// Enables shadow persistence tracking for this region (see
    /// [`crate::shadow`]). The current memory contents are checkpointed as
    /// persisted; from here on, instrumented stores must be flushed and
    /// fenced to survive a fault-injected crash. Idempotent (re-enabling
    /// re-checkpoints).
    ///
    /// # Errors
    ///
    /// [`NvError::RegionClosed`] after close.
    pub fn enable_shadow(&self) -> Result<()> {
        self.check_open()?;
        shadow::register(
            self.inner.rid,
            self.inner.base,
            self.inner.len(),
            RegionHeader::fault_stamp_offset() as usize,
        );
        Ok(())
    }

    /// Whether shadow tracking is enabled for this region.
    pub fn shadow_enabled(&self) -> bool {
        shadow::is_tracked(self.inner.base)
    }

    /// The fault stamp left by the last injected crash, if this image
    /// carries one.
    pub fn fault_stamp(&self) -> Option<FaultStamp> {
        let stamp = self.header().fault;
        (stamp.magic == crate::shadow::FAULT_STAMP_MAGIC).then_some(stamp)
    }

    /// Simulates a crash *with persistence faults*: a crash image is
    /// captured under `policy` — unflushed cache lines dropped or torn per
    /// the shadow tracker — the mapping is torn down as by
    /// [`Region::crash`], and the faulted image replaces the backing file.
    /// A subsequent [`Region::open_file`] sees exactly what a power cut
    /// would have left on the device.
    ///
    /// # Errors
    ///
    /// [`NvError::BadImage`] unless the region is file-backed (shared) and
    /// [`Region::enable_shadow`] was called; I/O errors writing the image.
    pub fn crash_with_faults(self, policy: FaultPolicy) -> Result<FaultReport> {
        let path = match &self.inner.backing {
            Backing::File {
                path, shared: true, ..
            } => path.clone(),
            _ => {
                return Err(NvError::BadImage(
                    "crash_with_faults requires a shared file-backed region".to_string(),
                ))
            }
        };
        let (image, report) = shadow::capture_crash_image(self.inner.base, policy)?;
        self.crash();
        std::fs::write(&path, &image)?;
        Ok(report)
    }

    // -- corruption robustness -----------------------------------------------

    /// Writes the current header snapshot (identity words, root
    /// directory, allocator state) into the inactive metadata slot and
    /// flips it active via its sequence number. Called automatically at
    /// every durability point ([`Region::sync`],
    /// [`Region::flush_magazines`], close); exposed so checkpoint-style
    /// callers and fault-injection harnesses can force a flip.
    ///
    /// # Errors
    ///
    /// [`NvError::RegionClosed`] after close.
    pub fn update_meta_slots(&self) -> Result<()> {
        self.check_open()?;
        {
            let _g = self.inner.alloc_lock.lock();
            if self.inner.closed.load(Ordering::Acquire) {
                return Err(NvError::RegionClosed {
                    rid: self.inner.rid,
                });
            }
            // SAFETY: lock held; region mapped while the handle exists.
            let hdr = unsafe { self.header_mut() };
            self.inner.fold_counters(&mut hdr.alloc);
            self.inner.write_meta_slot();
        }
        // A slot flip is a durability point: ship it (outside the
        // allocator lock — capture takes the shadow and repl locks).
        crate::repl::on_durability_point(self.inner.base);
        Ok(())
    }

    /// Runs the full corruption walk over this region's mapped bytes:
    /// primary header (magic/version/geometry), root-directory decode and
    /// bounds, allocator free-list sanity, both metadata slots' CRCs and
    /// sequence numbers, and — when a `pstore` store is present — every
    /// undo-log entry checksum. Purely diagnostic: nothing is modified.
    ///
    /// # Errors
    ///
    /// [`NvError::RegionClosed`] after close.
    pub fn verify(&self) -> Result<VerifyReport> {
        self.check_open()?;
        let _g = self.inner.alloc_lock.lock();
        // SAFETY: mapped while the handle exists; lock excludes header
        // mutation during the walk.
        let bytes =
            unsafe { std::slice::from_raw_parts(self.inner.base as *const u8, self.inner.len()) };
        Ok(verify::verify_bytes(bytes))
    }

    /// Opens a damaged image in salvage mode: the file is mapped
    /// copy-on-write (`MAP_PRIVATE`, the file itself is never written),
    /// the primary metadata is repaired from the newest valid slot where
    /// possible, unverifiable root entries are quarantined (dropped from
    /// the directory, listed in the report), and an unrecoverable
    /// allocator is frozen so further allocation fails cleanly instead of
    /// double-serving memory. The region reports [`Region::was_dirty`] so
    /// recovery layers run.
    ///
    /// # Errors
    ///
    /// [`NvError::BadImage`] when not even a slot-assisted read-only open
    /// is possible (boot block and both slots unusable, or the file is
    /// smaller than a region can be); [`NvError::InvalidRid`] if the
    /// salvaged rid is already open; plus I/O errors.
    pub fn open_file_salvage<P: AsRef<Path>>(path: P) -> Result<(Region, VerifyReport)> {
        let path = path.as_ref();
        let space = NvSpace::global();
        let layout = space.layout();
        // A read-only file is fine: the COW mapping never writes back.
        let file = match OpenOptions::new().read(true).write(true).open(path) {
            Ok(f) => f,
            Err(_) => OpenOptions::new().read(true).open(path)?,
        };
        let flen = file.metadata()?.len();
        let min_len = RegionHeader::data_start() + 64;
        if flen < min_len {
            return Err(NvError::BadImage(format!(
                "file of {flen} bytes is too small to salvage (minimum {min_len})"
            )));
        }
        if flen as usize > layout.max_region_size() {
            return Err(NvError::BadImage(format!(
                "file of {flen} bytes exceeds the maximum region size {}",
                layout.max_region_size()
            )));
        }
        // The mapping length is the file length — the one geometry fact
        // that cannot lie — regardless of what the header claims. The
        // claimed capacity is equally untrusted: the salvage run is sized
        // from the file, so a salvaged session simply cannot grow.
        let size = flen as usize;
        let chunks = layout.chunks_for(size) as u32;
        let run = space.acquire_chunks(chunks)?;
        let capacity = chunks as usize * layout.chunk_size();
        let base = space.chunk_base(run.start);
        let cleanup = |run| {
            let _ = space.decommit_range(base, capacity);
            space.release_chunks(run);
        };
        if let Err(e) = space.commit_range_file(base, size, &file, 0, false) {
            space.release_chunks(run);
            return Err(e);
        }
        // SAFETY: mapped copy-on-write and `size` bytes long; repairs land
        // in the private mapping only.
        let bytes = unsafe { std::slice::from_raw_parts_mut(base as *mut u8, size) };
        let report = match verify::salvage_in_place(bytes) {
            Ok(r) => r,
            Err(e) => {
                cleanup(run);
                return Err(e);
            }
        };
        // SAFETY: header is mapped; salvage made it structurally valid.
        let rid = unsafe { (*(base as *const RegionHeader)).rid };
        if !layout.rid_in_range(rid) {
            cleanup(run);
            return Err(NvError::InvalidRid {
                rid,
                reason: "out of range for layout",
            });
        }
        if let Err(e) = space.bind(rid, run) {
            cleanup(run);
            return Err(e);
        }
        // SAFETY: as above.
        let persisted = unsafe { (*(base as *const RegionHeader)).alloc.stats() };
        let instance = NEXT_INSTANCE.fetch_add(1, Ordering::Relaxed);
        // Salvage keeps whatever bitmap pages still verify; unverifiable
        // ones degrade the session to the (frozen) legacy allocator, so
        // frees still route correctly and allocation fails cleanly.
        // SAFETY: mapped copy-on-write and owned exclusively.
        let ll = unsafe {
            LlState::open(
                base,
                capacity,
                size,
                instance,
                &(*(base as *const RegionHeader)).alloc,
            )
            .unwrap_or(None)
        };
        let mut seeded = seed_stats(&persisted);
        if let Some(ll) = &ll {
            // Fold-time snapshot, as in `open_impl`.
            let (blocks, bytes) = ll.folded_live();
            seeded.live_allocs -= blocks as i64;
            seeded.live_bytes -= bytes as i64;
        }
        let inner = Inner {
            space,
            rid,
            run,
            base,
            size: AtomicUsize::new(size),
            capacity,
            was_dirty: true,
            backing: Backing::File {
                file,
                path: path.to_path_buf(),
                shared: false,
            },
            alloc_lock: Mutex::new(()),
            closed: AtomicBool::new(false),
            instance,
            magazines: AtomicBool::new(true),
            lockfree: AtomicBool::new(ll.is_some()),
            ll,
            caches: Mutex::new(Vec::new()),
            retired: Mutex::new(seeded),
        };
        registry::register(rid, base, size);
        Ok((
            Region {
                inner: Arc::new(inner),
            },
            report,
        ))
    }
}

/// Decodes a root entry's name with bounded, error-returning parsing: a
/// name without a NUL terminator inside the fixed-size field, or one that
/// is not valid UTF-8, is a corrupt directory entry and surfaces as
/// [`NvError::BadImage`] — never a panic, never a silently-empty name.
pub(crate) fn decode_root_name(entry: &RootEntry) -> Result<&str> {
    let len = entry.name.iter().position(|&b| b == 0).ok_or_else(|| {
        NvError::BadImage("root name is not NUL-terminated within its field".to_string())
    })?;
    std::str::from_utf8(&entry.name[..len])
        .map_err(|_| NvError::BadImage("root name is not valid UTF-8".to_string()))
}

/// Whether a (used) entry decodes cleanly to `name`. Corrupt entries
/// match nothing.
fn entry_matches(entry: &RootEntry, name: &str) -> bool {
    entry.name[0] != 0 && decode_root_name(entry).is_ok_and(|n| n == name)
}

impl Inner {
    /// Unique id of this open session (not the reusable region id).
    pub(crate) fn instance(&self) -> u64 {
        self.instance
    }

    /// Current committed size. `Acquire` pairs with the `Release` store
    /// in [`Region::grow`]: a thread that observes a grown size also
    /// observes the newly committed memory behind it.
    #[inline]
    fn len(&self) -> usize {
        self.size.load(Ordering::Acquire)
    }

    /// Two-level allocator contributions to the aggregate statistics:
    /// `(alloc_calls, free_calls, live_blocks, live_bytes)`, all zero
    /// for legacy regions. Live counts are bitmap popcounts minus the
    /// blocks delegated to magazine caches (the caches' own shards
    /// account for those), so the sum with [`Inner::aggregate_stats`]
    /// is exact in every allocation mode.
    fn ll_totals(&self) -> (u64, u64, i64, i64) {
        match &self.ll {
            Some(ll) => {
                let (allocs, frees) = ll.op_counts();
                let (blocks, bytes) = ll.stat_live();
                (allocs, frees, blocks, bytes)
            }
            None => (0, 0, 0, 0),
        }
    }

    /// Returns drained blocks to their owning allocator: bitmap-owned
    /// offsets are CAS-cleared in place (uncounted — the blocks were
    /// never handed to the application), the rest go back to the legacy
    /// class free list. Caller holds `alloc_lock`.
    fn restore_blocks(&self, alloc: &mut AllocHeader, class: usize, blocks: &[u64]) {
        let mut legacy = Vec::new();
        for &off in blocks {
            let routed = self
                .ll
                .as_ref()
                .is_some_and(|ll| ll.owns(off) && ll.free_block(off, false).is_some());
            if !routed {
                legacy.push(off);
            }
        }
        if !legacy.is_empty() {
            // SAFETY: every offset was carved from this region's
            // allocator and is unreferenced; the region is mapped.
            unsafe { alloc.restore_batch(self.base, class, &legacy) };
        }
    }

    /// Composes the current header snapshot and writes it — with the next
    /// sequence number and its CRC-64 — into the *inactive* metadata
    /// slot, making that slot the active one. The caller must exclude
    /// concurrent header mutation (holds `alloc_lock`, or owns the region
    /// exclusively as in build/teardown). The slot bytes are tracked,
    /// flushed, and fenced, so a [`crate::shadow::FaultPlan`] can tear
    /// the flip itself.
    fn write_meta_slot(&self) {
        // SAFETY: the region is mapped read/write while `Inner` exists.
        let bytes = unsafe { std::slice::from_raw_parts_mut(self.base as *mut u8, self.len()) };
        if let Some((slot_off, len)) = verify::stage_next_slot(bytes) {
            let addr = self.base + slot_off;
            shadow::track_store(addr, len);
            latency::clflush_range(addr, len);
            latency::wbarrier();
        }
    }

    /// Records a thread cache so close-time drain and out-of-memory
    /// reclaim can reach it.
    pub(crate) fn register_cache(&self, cache: Arc<ThreadCache>) {
        self.caches.lock().push(cache);
    }

    /// Thread-exit hook: restores one thread's cached blocks to the
    /// shared free lists, merges its statistics shard into the retired
    /// base, and unregisters the cache. No-op once the region is closed —
    /// teardown already drained the blocks.
    pub(crate) fn retire_thread_cache(&self, cache: &Arc<ThreadCache>) {
        crate::metrics::incr(crate::metrics::Counter::MagazineFlushes);
        let _g = self.alloc_lock.lock();
        if self.closed.load(Ordering::Acquire) {
            return;
        }
        // SAFETY: lock held and the mapping is still live (closed=false).
        let hdr = unsafe { &mut *(self.base as *mut RegionHeader) };
        {
            let mut c = cache.inner.lock();
            for class in 0..NUM_CLASSES {
                let blocks = c.drain_class(class);
                if blocks.is_empty() {
                    continue;
                }
                self.restore_blocks(&mut hdr.alloc, class, &blocks);
            }
            self.retired.lock().merge(&c.stats);
        }
        self.caches.lock().retain(|c| !Arc::ptr_eq(c, cache));
        self.fold_counters(&mut hdr.alloc);
    }

    /// Sums the retired base and every live thread's shard. Caller holds
    /// `alloc_lock` (lock order is always region lock → cache lock).
    fn aggregate_stats(&self) -> LocalStats {
        let mut t = *self.retired.lock();
        for cache in self.caches.lock().iter() {
            t.merge(&cache.inner.lock().stats);
        }
        t
    }

    /// Writes the aggregated counters into the persistent header.
    /// Magazine contents are accounted as live on media: a crash makes
    /// them leaks, a flush turns them back into free-list blocks. Caller
    /// holds `alloc_lock`.
    fn fold_counters(&self, alloc: &mut AllocHeader) {
        let t = self.aggregate_stats();
        let (ll_allocs, ll_frees, ll_blocks, ll_bytes) = self.ll_totals();
        alloc.set_stat_counters(
            (t.live_bytes + t.cached_bytes as i64 + ll_bytes).max(0) as u64,
            (t.live_allocs + t.cached_blocks as i64 + ll_blocks).max(0) as u64,
            t.alloc_calls + ll_allocs,
            t.free_calls + ll_frees,
        );
        // Snapshot the bitmap popcount alongside, so the next open can
        // back the fold-time bitmap contribution out of these counters
        // and re-add the (authoritative) open-time popcount. Lock-free
        // traffic can drift between the two reads; both are exact at
        // quiescent points (sync with no concurrent allocs, close).
        if let Some(ll) = &self.ll {
            ll.record_fold();
        }
    }

    /// Drains every registered thread cache into the shared free lists
    /// (statistics shards stay with their caches: the blocks merely move
    /// from cached back to free). Caller holds `alloc_lock`.
    fn reclaim_caches(&self, alloc: &mut AllocHeader) {
        let caches = self.caches.lock();
        for cache in caches.iter() {
            let mut c = cache.inner.lock();
            for class in 0..NUM_CLASSES {
                let blocks = c.drain_class(class);
                if blocks.is_empty() {
                    continue;
                }
                self.restore_blocks(alloc, class, &blocks);
            }
        }
    }

    /// Restores an overflow batch popped off a full magazine. The blocks
    /// are already out of the magazine (and out of cached accounting), so
    /// on a lost race with close they become (bounded) leaks rather than
    /// writes into an unmapped page.
    fn restore_overflow(&self, class: usize, blocks: &[u64]) {
        crate::metrics::incr(crate::metrics::Counter::MagazineFlushes);
        let _g = self.alloc_lock.lock();
        if self.closed.load(Ordering::Acquire) {
            return;
        }
        // SAFETY: lock held and the mapping is still live (closed=false).
        let hdr = unsafe { &mut *(self.base as *mut RegionHeader) };
        self.restore_blocks(&mut hdr.alloc, class, blocks);
        self.fold_counters(&mut hdr.alloc);
    }

    fn teardown(&self, clean: bool) -> Result<()> {
        if self.closed.swap(true, Ordering::AcqRel) {
            return Ok(());
        }
        let mut result = Ok(());
        if let Some(ll) = &self.ll {
            ll.freeze();
        }
        if clean {
            {
                // Serialize with in-flight refills/flushes, then drain
                // every magazine back to the persistent free lists and
                // fold the counters before declaring the image clean.
                let _g = self.alloc_lock.lock();
                // SAFETY: still mapped; we are the unique closer and the
                // lock excludes concurrent allocator access.
                let hdr = unsafe { &mut *(self.base as *mut RegionHeader) };
                self.reclaim_caches(&mut hdr.alloc);
                self.fold_counters(&mut hdr.alloc);
                if let Some(ll) = &self.ll {
                    // SAFETY: lock held, unique closer: quiescent.
                    unsafe { ll.seal() };
                }
                hdr.flags &= !FLAG_DIRTY;
                // Converge both slots onto the final snapshot: open-time
                // rot repair relies on a cleanly-closed image having two
                // agreeing slots, so a mismatch pinpoints primary decay.
                self.write_meta_slot();
                self.write_meta_slot();
            }
            if let Backing::File { shared: true, .. } = self.backing {
                result = self.space.sync_range(self.base, self.len());
            }
        }
        // A crash teardown (clean=false) deliberately skips the drain:
        // magazine contents are volatile, so whatever the last fold wrote
        // is what recovery sees — cached blocks become bounded leaks.
        //
        // A clean close is the final durability point: converge an
        // attached replication source on the closed image (including the
        // cleared dirty flag) before the tracker disappears. A crash
        // detaches without capturing — the replica keeps lagging, which
        // is exactly what a dead primary looks like.
        crate::repl::on_region_close(self.base, clean);
        shadow::unregister_rid(self.rid);
        registry::unregister(self.rid);
        self.space.unbind(self.rid, self.run);
        // Decommit the whole reserved run (the uncommitted tail is
        // already PROT_NONE; re-decommitting it is harmless and keeps the
        // teardown independent of growth history).
        let d = self.space.decommit_range(self.base, self.capacity);
        self.space.release_chunks(self.run);
        result.and(d)
    }
}

impl Drop for Inner {
    fn drop(&mut self) {
        let _ = self.teardown(true);
    }
}

fn auto_rid(space: &NvSpace) -> Result<u32> {
    registry::alloc_rid(space.layout().max_rid(), |rid| space.is_bound(rid))
        .ok_or(NvError::NoFreeSegment)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir() -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "nvmsim-region-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn create_alloc_write_read() {
        let r = Region::create(1 << 20).unwrap();
        let p = r.alloc(128, 8).unwrap();
        unsafe {
            std::ptr::write_bytes(p.as_ptr(), 0x5A, 128);
            assert_eq!(*p.as_ptr().add(127), 0x5A);
        }
        assert!(r.contains(p.as_ptr() as usize));
        r.close().unwrap();
    }

    #[test]
    fn rid_is_discoverable_from_any_inner_address() {
        let r = Region::create(1 << 20).unwrap();
        let p = r.alloc(64, 8).unwrap();
        let space = NvSpace::global();
        assert_eq!(space.rid_of_addr(p.as_ptr() as usize), r.rid());
        assert_eq!(space.base_of_rid(r.rid()), r.base());
        r.close().unwrap();
    }

    #[test]
    fn roots_roundtrip_and_update() {
        let r = Region::create(1 << 20).unwrap();
        let a = r.alloc(64, 8).unwrap().as_ptr() as usize;
        let b = r.alloc(64, 8).unwrap().as_ptr() as usize;
        r.set_root("head", a).unwrap();
        assert_eq!(r.root("head"), Some(a));
        r.set_root("head", b).unwrap();
        assert_eq!(r.root("head"), Some(b));
        assert_eq!(r.root("tail"), None);
        assert_eq!(r.roots().unwrap(), vec!["head".to_string()]);
        assert!(r.remove_root("head"));
        assert!(!r.remove_root("head"));
        r.close().unwrap();
    }

    #[test]
    fn tagged_roots_validate_type() {
        let r = Region::create(1 << 20).unwrap();
        let a = r.alloc(64, 8).unwrap().as_ptr() as usize;
        r.set_root_tagged("list", a, 0x4c495354).unwrap();
        assert_eq!(r.root_tag("list"), Some(0x4c495354));
        assert_eq!(r.root_checked("list", 0x4c495354).unwrap(), a);
        assert!(matches!(
            r.root_checked("list", 0x54524545),
            Err(NvError::BadImage(_))
        ));
        assert!(matches!(
            r.root_checked("absent", 1),
            Err(NvError::RootNotFound(_))
        ));
        // Untagged roots report tag 0.
        r.set_root("plain", a).unwrap();
        assert_eq!(r.root_tag("plain"), Some(0));
        assert_eq!(r.root_tag("absent"), None);
        r.close().unwrap();
    }

    #[test]
    fn tagged_root_survives_reopen() {
        let path = tmpdir().join("tagged.nvr");
        {
            let r = Region::create_file(&path, 1 << 20).unwrap();
            let a = r.alloc(64, 8).unwrap().as_ptr() as usize;
            r.set_root_tagged("x", a, 77).unwrap();
            r.close().unwrap();
        }
        let r = Region::open_file(&path).unwrap();
        assert_eq!(r.root_tag("x"), Some(77));
        r.root_checked("x", 77).unwrap();
        r.close().unwrap();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn root_directory_limits() {
        let r = Region::create(1 << 20).unwrap();
        let a = r.alloc(64, 8).unwrap().as_ptr() as usize;
        assert!(matches!(
            r.set_root(&"x".repeat(32), a),
            Err(NvError::RootNameTooLong(_))
        ));
        for i in 0..MAX_ROOTS {
            r.set_root(&format!("r{i}"), a).unwrap();
        }
        assert!(matches!(
            r.set_root("overflow", a),
            Err(NvError::RootDirectoryFull)
        ));
        r.close().unwrap();
    }

    #[test]
    fn file_region_persists_and_reopens_at_new_address() {
        let path = tmpdir().join("persist.nvr");
        let (rid, old_base, off);
        {
            let r = Region::create_file(&path, 1 << 20).unwrap();
            rid = r.rid();
            old_base = r.base();
            let p = r.alloc(64, 8).unwrap();
            unsafe { (p.as_ptr() as *mut u64).write(0xfeed_f00d) };
            off = r.offset_of(p.as_ptr() as usize).unwrap();
            r.set_root("value", p.as_ptr() as usize).unwrap();
            r.close().unwrap();
        }
        let r = Region::open_file(&path).unwrap();
        assert_eq!(r.rid(), rid);
        assert!(!r.was_dirty(), "clean close recorded");
        // With 255 free segments the odds of landing on the same base are
        // 1/255; retry once if it happens.
        if r.base() == old_base {
            let p2 = r.root("value").unwrap();
            assert_eq!(unsafe { *(p2 as *const u64) }, 0xfeed_f00d);
            r.close().unwrap();
            let r2 = Region::open_file(&path).unwrap();
            assert_eq!(r2.root_off("value").unwrap(), off);
            r2.close().unwrap();
        } else {
            assert_eq!(r.root_off("value").unwrap(), off);
            let p2 = r.root("value").unwrap();
            assert_eq!(unsafe { *(p2 as *const u64) }, 0xfeed_f00d);
            r.close().unwrap();
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn crash_leaves_dirty_flag() {
        let path = tmpdir().join("crash.nvr");
        {
            let r = Region::create_file(&path, 1 << 20).unwrap();
            r.sync().unwrap();
            r.crash();
        }
        let r = Region::open_file(&path).unwrap();
        assert!(r.was_dirty());
        r.close().unwrap();
        let r = Region::open_file(&path).unwrap();
        assert!(!r.was_dirty(), "clean close resets the flag");
        r.close().unwrap();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn double_open_same_rid_rejected() {
        let path = tmpdir().join("dup.nvr");
        let r = Region::create_file(&path, 1 << 20).unwrap();
        let err = Region::open_file(&path).unwrap_err();
        assert!(matches!(err, NvError::InvalidRid { .. }));
        r.close().unwrap();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn open_rejects_garbage_image() {
        let path = tmpdir().join("garbage.nvr");
        std::fs::write(&path, vec![0u8; 4096]).unwrap();
        assert!(matches!(
            Region::open_file(&path),
            Err(NvError::BadImage(_))
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn cow_open_does_not_touch_file() {
        let path = tmpdir().join("cow.nvr");
        {
            let r = Region::create_file(&path, 1 << 20).unwrap();
            let p = r.alloc(64, 8).unwrap();
            unsafe { (p.as_ptr() as *mut u64).write(111) };
            r.set_root("v", p.as_ptr() as usize).unwrap();
            r.close().unwrap();
        }
        let before = std::fs::read(&path).unwrap();
        {
            let r = Region::open_file_cow(&path).unwrap();
            let v = r.root("v").unwrap();
            unsafe { (v as *mut u64).write(222) };
            r.close().unwrap();
        }
        let after = std::fs::read(&path).unwrap();
        assert_eq!(
            before, after,
            "MAP_PRIVATE session must not modify the image"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn closed_region_rejects_operations() {
        let r = Region::create(1 << 20).unwrap();
        let r2 = r.clone();
        r.close().unwrap();
        assert!(matches!(r2.alloc(64, 8), Err(NvError::RegionClosed { .. })));
    }

    #[test]
    fn alloc_too_big_for_region_fails() {
        let r = Region::create(1 << 16).unwrap();
        assert!(matches!(
            r.alloc(1 << 17, 8),
            Err(NvError::OutOfMemory { .. })
        ));
        r.close().unwrap();
    }

    #[test]
    fn dealloc_recycles_memory() {
        let r = Region::create(1 << 20).unwrap();
        let p1 = r.alloc(256, 8).unwrap();
        unsafe { r.dealloc(p1, 256) };
        let p2 = r.alloc(256, 8).unwrap();
        assert_eq!(p1, p2);
        r.close().unwrap();
    }

    #[test]
    fn close_drains_magazines_into_clean_image() {
        let path = tmpdir().join("magdrain.nvr");
        {
            let r = Region::create_file(&path, 1 << 20).unwrap();
            let ptrs: Vec<_> = (0..100).map(|_| r.alloc(64, 8).unwrap()).collect();
            for p in ptrs {
                unsafe { r.dealloc(p, 64) };
            }
            let s = r.stats();
            assert_eq!(s.live_allocs, 0, "user perspective: all freed");
            assert_eq!(s.live_bytes, 0);
            r.close().unwrap();
        }
        // The close drained every magazine: the persisted image records no
        // live blocks and validates cleanly on reopen.
        let r = Region::open_file(&path).unwrap();
        assert!(!r.was_dirty());
        let s = r.stats();
        assert_eq!(s.live_allocs, 0, "no blocks stranded in magazines");
        assert_eq!(s.live_bytes, 0);
        assert_eq!(s.alloc_calls, 100);
        assert_eq!(s.free_calls, 100);
        r.close().unwrap();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn crash_leaks_at_most_one_magazine_per_class_per_thread() {
        let path = tmpdir().join("magleak.nvr");
        {
            let r = Region::create_file(&path, 1 << 20).unwrap();
            let ptrs: Vec<_> = (0..100).map(|_| r.alloc(64, 8).unwrap()).collect();
            for p in ptrs {
                unsafe { r.dealloc(p, 64) };
            }
            // Make the fold durable, then die with the magazines loaded.
            r.sync().unwrap();
            r.crash();
        }
        let r = Region::open_file(&path).unwrap();
        assert!(r.was_dirty());
        let s = r.stats();
        assert!(
            s.live_allocs <= crate::magazine::MAGAZINE_CAP as u64,
            "crash leaks at most one magazine of blocks, got {}",
            s.live_allocs
        );
        // The image is still a working region after the bounded leak.
        let p = r.alloc(64, 8).unwrap();
        unsafe { r.dealloc(p, 64) };
        r.close().unwrap();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn flush_magazines_parks_nothing() {
        let r = Region::create(1 << 20).unwrap();
        let p = r.alloc(128, 8).unwrap();
        unsafe { r.dealloc(p, 128) };
        r.flush_magazines().unwrap();
        // The freed block is back on the shared free list, not cached:
        // a fresh refill re-carves it (LIFO) without moving the bump.
        let bump_before = r.stats().bump;
        let p2 = r.alloc(128, 8).unwrap();
        assert_eq!(p, p2, "flushed block is first in the shared free list");
        assert_eq!(r.stats().bump, bump_before);
        r.close().unwrap();
    }

    #[test]
    fn magazines_can_be_disabled_per_region() {
        let r = Region::create(1 << 20).unwrap();
        assert!(r.magazines_enabled());
        let p = r.alloc(64, 8).unwrap();
        unsafe { r.dealloc(p, 64) };
        r.set_magazines(false);
        assert!(!r.magazines_enabled());
        // Locked path still recycles through the shared free list.
        let p1 = r.alloc(64, 8).unwrap();
        unsafe { r.dealloc(p1, 64) };
        let p2 = r.alloc(64, 8).unwrap();
        assert_eq!(p1, p2);
        let s = r.stats();
        assert_eq!(s.live_allocs, 1);
        r.set_magazines(true);
        r.close().unwrap();
    }

    #[test]
    fn closed_region_rejects_magazine_flush() {
        let r = Region::create(1 << 20).unwrap();
        let r2 = r.clone();
        r.close().unwrap();
        assert!(matches!(
            r2.flush_magazines(),
            Err(NvError::RegionClosed { .. })
        ));
    }

    #[test]
    fn user_tag_roundtrips_through_file() {
        let path = tmpdir().join("tag.nvr");
        {
            let r = Region::create_file(&path, 1 << 20).unwrap();
            r.set_user_tag(0xC0FFEE);
            r.close().unwrap();
        }
        let r = Region::open_file(&path).unwrap();
        assert_eq!(r.user_tag(), 0xC0FFEE);
        r.close().unwrap();
        std::fs::remove_file(&path).ok();
    }
}
