//! NV-space bit layouts.
//!
//! Two things live here:
//!
//! * [`Layout`] — the *runtime* configuration used by the simulated NV space
//!   ([`crate::nvspace::NvSpace`]): how many bits address a byte within a
//!   segment (`l3`), how many bits index segments (`l2`), and how many bits
//!   a region ID may use (`l4`). This mirrors the paper's Figure 6 with the
//!   NV-space origin relocated into user space (substitution S1 in
//!   DESIGN.md).
//!
//! * [`ExactLayout`] — a faithful arithmetic model of the paper's Figure 6/7
//!   scheme, including the leading-ones prefix and the *flagging bits* that
//!   keep the RID table, the base table, and the data area disjoint when all
//!   three are carved out of one address range purely by bit patterns. The
//!   simulator does not execute through this model (the kernel owns the top
//!   of the address space on Linux), but the model is property-tested so the
//!   paper's address-encoding claims are reproduced at the arithmetic level.

use crate::error::{NvError, Result};

/// Ceiling of `bits / 8`: the number of bytes needed to store `bits` bits.
/// This is the paper's `⌈L/8⌉` used for table entry sizes.
pub const fn bytes_for_bits(bits: u32) -> u32 {
    bits.div_ceil(8)
}

/// `⌈log2(n)⌉` for `n >= 1`: the shift that strides entries of `n` bytes.
pub const fn ceil_log2(n: u32) -> u32 {
    if n <= 1 {
        0
    } else {
        u32::BITS - (n - 1).leading_zeros()
    }
}

// ---------------------------------------------------------------------------
// Runtime layout
// ---------------------------------------------------------------------------

/// Runtime NV-space configuration.
///
/// An address inside the simulated NV space decomposes, relative to the
/// data-area base, as `segment_index << l3 | offset`, exactly like the
/// paper's `nvbase`/offset split. Region IDs range over `[1, 2^l4)`; ID 0 is
/// reserved as the null region.
///
/// A RIV pointer value packs as `FLAG | rid << l3 | offset` where `FLAG` is
/// bit 63, playing the role of the paper's leading-ones prefix (it marks the
/// value as an NV pointer and keeps `rid + offset` confined to 63 bits).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Layout {
    /// Bits indexing segments; the NV space holds `2^l2` segments.
    pub l2: u32,
    /// Bits addressing bytes within a segment; segments are `2^l3` bytes.
    pub l3: u32,
    /// Bits for region IDs; valid IDs are `1 ..= 2^l4 - 1`.
    pub l4: u32,
}

impl Layout {
    /// The default simulation layout: 256 segments of 64 MiB (16 GiB of
    /// virtual data area) and 16-bit region IDs.
    pub const DEFAULT: Layout = Layout {
        l2: 8,
        l3: 26,
        l4: 16,
    };

    /// Creates a layout after validating the paper's constraints plus the
    /// simulator's practical bounds.
    ///
    /// # Errors
    ///
    /// [`NvError::BadLayout`] when a constraint is violated; the message
    /// names the offending constraint.
    pub fn new(l2: u32, l3: u32, l4: u32) -> Result<Layout> {
        let lay = Layout { l2, l3, l4 };
        lay.validate()?;
        Ok(lay)
    }

    /// Validates the layout. See [`Layout::new`].
    pub fn validate(&self) -> Result<()> {
        let Layout { l2, l3, l4 } = *self;
        if l4 < l2 {
            return Err(NvError::BadLayout(format!(
                "l4 ({l4}) must be >= l2 ({l2}) so the base table covers every segment's region"
            )));
        }
        if l3 < 12 {
            return Err(NvError::BadLayout(format!(
                "segment bits l3 ({l3}) must be >= 12"
            )));
        }
        if l2 + l3 > 46 {
            return Err(NvError::BadLayout(format!(
                "data area of 2^(l2+l3) = 2^{} bytes exceeds the 2^46 reservation cap",
                l2 + l3
            )));
        }
        if l4 > 28 {
            return Err(NvError::BadLayout(format!(
                "l4 ({l4}) > 28 would need a base table larger than 1 GiB of committed memory"
            )));
        }
        if l4 + l3 > 63 {
            return Err(NvError::BadLayout(format!(
                "rid and offset (l4 + l3 = {}) must fit in 63 bits of a RIV value",
                l4 + l3
            )));
        }
        Ok(())
    }

    /// Number of segments in the data area.
    pub fn segment_count(&self) -> usize {
        1usize << self.l2
    }

    /// Size of one segment in bytes.
    pub fn segment_size(&self) -> usize {
        1usize << self.l3
    }

    /// Total size of the data area in bytes.
    pub fn data_area_size(&self) -> usize {
        self.segment_count() << self.l3
    }

    /// Largest valid region ID.
    pub fn max_rid(&self) -> u32 {
        ((1u64 << self.l4) - 1) as u32
    }

    /// Mask extracting the within-segment offset from an address.
    pub fn offset_mask(&self) -> usize {
        self.segment_size() - 1
    }

    /// Size in bytes of the RID table (`2^l2` entries, one per segment).
    ///
    /// Entries are 4 bytes; the paper's minimum would be `⌈l4/8⌉` bytes,
    /// which equals 4 only for `24 < l4 <= 32` — we use a fixed 4 so entry
    /// loads are single aligned `u32` reads.
    pub fn rid_table_size(&self) -> usize {
        self.segment_count() * 4
    }

    /// Size in bytes of the base table (`2^l4` entries, one per region ID).
    ///
    /// Entries are 8 bytes and hold the region's absolute segment base
    /// directly (the paper stores the `nvbase` bits — `⌈l2/8⌉` bytes —
    /// which is the same information modulo the shift; we widen the entry
    /// so `ID2Addr` is a single load with no recombination). The table is
    /// committed lazily by the OS, so only touched entries cost memory.
    pub fn base_table_size(&self) -> usize {
        (1usize << self.l4) * 8
    }

    /// Whether `rid` is a usable region ID under this layout.
    pub fn rid_in_range(&self, rid: u32) -> bool {
        rid >= 1 && rid <= self.max_rid()
    }
}

impl Default for Layout {
    fn default() -> Self {
        Layout::DEFAULT
    }
}

// ---------------------------------------------------------------------------
// Paper-exact model (Figures 6 and 7)
// ---------------------------------------------------------------------------

/// Arithmetic model of the paper's exact NV-space address encodings.
///
/// In the paper the NV space occupies the top of the 64-bit address space:
/// every NV address starts with `l1` one-bits. Below that prefix, three
/// areas are distinguished purely by bit patterns:
///
/// * **RID table** (bottom): entry for segment `nvbase` at
///   `prefix | nvbase << rid_entry_shift`; the entry holds the region ID.
/// * **Base table** (middle): entry for region `rid` at
///   `prefix | 1 << (l4 + base_entry_shift) | rid << base_entry_shift`; the
///   set *flagging bit* at position `l4 + base_entry_shift` lifts the base
///   table above the RID table. The entry holds the segment's `nvbase`.
/// * **Data area** (top): `prefix | nvbase << l3 | offset` where the most
///   significant bit of `nvbase` is 1 (the paper's `11`/`10` flagging
///   bits), lifting all data addresses above both tables.
///
/// [`ExactLayout::validate`] enforces the constraints stated in Section 4.3;
/// the unit and property tests verify the disjointness and round-trip claims.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ExactLayout {
    /// Leading one-bits marking NV-space addresses.
    pub l1: u32,
    /// Bits of `nvbase` (segment index).
    pub l2: u32,
    /// Bits of within-segment offset.
    pub l3: u32,
    /// Bits of region ID.
    pub l4: u32,
}

/// The three NV-space areas an address can fall into, per the exact model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Area {
    /// Direct-mapped table holding region IDs, indexed by segment.
    RidTable,
    /// Direct-mapped table holding segment bases, indexed by region ID.
    BaseTable,
    /// NV segments holding region data.
    Data,
}

impl ExactLayout {
    /// The configuration used in the paper's worked example (Section 4.3).
    pub const PAPER_EXAMPLE: ExactLayout = ExactLayout {
        l1: 4,
        l2: 28,
        l3: 32,
        l4: 32,
    };

    /// The large-region configuration quoted in the paper's discussion.
    pub const PAPER_LARGE: ExactLayout = ExactLayout {
        l1: 2,
        l2: 24,
        l3: 38,
        l4: 58,
    };

    /// Byte stride shift between RID-table entries (`⌈log2 ⌈l4/8⌉⌉`).
    pub fn rid_entry_shift(&self) -> u32 {
        ceil_log2(bytes_for_bits(self.l4))
    }

    /// Byte stride shift between base-table entries (`⌈log2 ⌈l2/8⌉⌉`).
    pub fn base_entry_shift(&self) -> u32 {
        ceil_log2(bytes_for_bits(self.l2))
    }

    /// The all-ones prefix occupying the top `l1` bits.
    pub fn prefix(&self) -> u64 {
        if self.l1 == 0 {
            0
        } else {
            !0u64 << (64 - self.l1)
        }
    }

    /// Validates the constraints of Section 4.3.
    ///
    /// # Errors
    ///
    /// [`NvError::BadLayout`] naming the violated constraint.
    pub fn validate(&self) -> Result<()> {
        let ExactLayout { l1, l2, l3, l4 } = *self;
        let sb = self.base_entry_shift();
        if l1 + l2 + l3 != 64 {
            return Err(NvError::BadLayout(format!(
                "l1 + l2 + l3 must be 64, got {l1} + {l2} + {l3}"
            )));
        }
        if l4 < l2 {
            return Err(NvError::BadLayout(format!(
                "l4 ({l4}) must be >= l2 ({l2})"
            )));
        }
        // Figure 6 caption: L4 + ceil(log(L2/8)) >= L3 — the base table's
        // flagging bit must reach the nvbase section of data addresses.
        if l4 + sb < l3 {
            return Err(NvError::BadLayout(format!(
                "l4 + base_entry_shift ({l4} + {sb}) must be >= l3 ({l3})"
            )));
        }
        // Discussion: L4 + ceil(log(L2/8)) <= 62 - L1 — room for flag bits.
        if l4 + sb > 62 - l1 {
            return Err(NvError::BadLayout(format!(
                "l4 + base_entry_shift ({l4} + {sb}) must be <= 62 - l1 ({})",
                62 - l1
            )));
        }
        // Data addresses (flagged nvbase, lowest is 2^(l2-1+l3)) must clear
        // the base table (topmost is below 2^(l4+sb+1)).
        if l2 - 1 + l3 < l4 + sb + 1 {
            return Err(NvError::BadLayout(format!(
                "data area (from bit {}) would overlap the base table (up to bit {})",
                l2 - 1 + l3,
                l4 + sb + 1
            )));
        }
        Ok(())
    }

    /// Number of usable data segments (those whose `nvbase` has the flag
    /// bit set — half of `2^l2`).
    pub fn usable_segments(&self) -> u64 {
        1u64 << (self.l2 - 1)
    }

    /// Lowest usable `nvbase` value (flag bit set).
    pub fn first_usable_nvbase(&self) -> u64 {
        1u64 << (self.l2 - 1)
    }

    /// Address of the RID-table entry for segment `nvbase`.
    ///
    /// This is the paper's Figure 7 (b) transformation applied to a segment
    /// base address: shift out the offset, mask to `l2` bits, stride by the
    /// entry size, and set the prefix.
    pub fn rid_entry_addr(&self, nvbase: u64) -> u64 {
        debug_assert!(nvbase < (1u64 << self.l2));
        self.prefix() | (nvbase << self.rid_entry_shift())
    }

    /// Address of the RID-table entry for an arbitrary *data* address: the
    /// same transformation, starting from the full address.
    pub fn rid_entry_addr_for(&self, addr: u64) -> u64 {
        self.rid_entry_addr(self.nvbase_of(addr))
    }

    /// Address of the base-table entry for region `rid` (Figure 7 (c)).
    pub fn base_entry_addr(&self, rid: u64) -> u64 {
        debug_assert!(rid < (1u64 << self.l4));
        let flag = 1u64 << (self.l4 + self.base_entry_shift());
        self.prefix() | flag | (rid << self.base_entry_shift())
    }

    /// Composes a data-area address from a flagged `nvbase` and an offset.
    ///
    /// # Panics
    ///
    /// Debug-asserts that `nvbase` has its flag (top) bit set and that the
    /// offset fits in `l3` bits.
    pub fn data_addr(&self, nvbase: u64, offset: u64) -> u64 {
        debug_assert!(nvbase >> (self.l2 - 1) == 1, "nvbase flag bit must be set");
        debug_assert!(offset < (1u64 << self.l3));
        self.prefix() | (nvbase << self.l3) | offset
    }

    /// Extracts the `nvbase` section from an NV-space address.
    pub fn nvbase_of(&self, addr: u64) -> u64 {
        (addr >> self.l3) & ((1u64 << self.l2) - 1)
    }

    /// Extracts the within-segment offset from an NV-space address.
    pub fn offset_of(&self, addr: u64) -> u64 {
        addr & ((1u64 << self.l3) - 1)
    }

    /// `getBase` from Figure 5 (c): masks the low `l3` bits.
    pub fn get_base(&self, addr: u64) -> u64 {
        addr & !((1u64 << self.l3) - 1)
    }

    /// Classifies an NV-space address into the area its bit pattern selects,
    /// or `None` if the pattern belongs to the gaps between areas.
    pub fn classify(&self, addr: u64) -> Option<Area> {
        if self.l1 > 0 && addr >> (64 - self.l1) != self.prefix() >> (64 - self.l1) {
            return None;
        }
        let low = addr & !self.prefix();
        if low >> (self.l2 - 1 + self.l3) != 0 {
            return Some(Area::Data);
        }
        let base_lo = 1u64 << (self.l4 + self.base_entry_shift());
        if low >= base_lo && low < base_lo << 1 {
            return Some(Area::BaseTable);
        }
        if low < (1u64 << (self.l2 + self.rid_entry_shift())) {
            return Some(Area::RidTable);
        }
        None
    }

    /// The half-open byte span `[lo, hi)` occupied by an area.
    pub fn area_span(&self, area: Area) -> (u64, u64) {
        let p = self.prefix();
        match area {
            Area::RidTable => {
                let entry = 1u64 << self.rid_entry_shift();
                (p, p + (1u64 << self.l2) * entry)
            }
            Area::BaseTable => {
                let lo = 1u64 << (self.l4 + self.base_entry_shift());
                (p + lo, p + (lo << 1))
            }
            Area::Data => {
                let lo = 1u64 << (self.l2 - 1 + self.l3);
                // Top of the data area is the top of the address space.
                (
                    p + lo,
                    p.wrapping_add(1u64 << (self.l2 + self.l3))
                        .wrapping_sub(1)
                        .wrapping_add(1),
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers() {
        assert_eq!(bytes_for_bits(8), 1);
        assert_eq!(bytes_for_bits(9), 2);
        assert_eq!(bytes_for_bits(28), 4);
        assert_eq!(bytes_for_bits(32), 4);
        assert_eq!(bytes_for_bits(58), 8);
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(4), 2);
        assert_eq!(ceil_log2(8), 3);
    }

    #[test]
    fn default_layout_is_valid() {
        Layout::DEFAULT.validate().unwrap();
        assert_eq!(Layout::default(), Layout::DEFAULT);
        assert_eq!(Layout::DEFAULT.segment_size(), 64 << 20);
        assert_eq!(Layout::DEFAULT.segment_count(), 256);
        assert_eq!(Layout::DEFAULT.max_rid(), 65535);
        assert!(Layout::DEFAULT.rid_in_range(1));
        assert!(Layout::DEFAULT.rid_in_range(65535));
        assert!(!Layout::DEFAULT.rid_in_range(0));
        assert!(!Layout::DEFAULT.rid_in_range(65536));
    }

    #[test]
    fn layout_rejects_bad_configs() {
        assert!(Layout::new(8, 26, 4).is_err(), "l4 < l2");
        assert!(Layout::new(8, 8, 16).is_err(), "tiny segments");
        assert!(Layout::new(24, 26, 28).is_err(), "data area too big");
        assert!(Layout::new(8, 26, 29).is_err(), "base table too big");
        assert!(Layout::new(8, 40, 28).is_err(), "riv overflow");
        assert!(Layout::new(8, 26, 16).is_ok());
    }

    #[test]
    fn paper_example_config_is_valid() {
        ExactLayout::PAPER_EXAMPLE.validate().unwrap();
        ExactLayout::PAPER_LARGE.validate().unwrap();
    }

    #[test]
    fn paper_example_entry_strides() {
        let e = ExactLayout::PAPER_EXAMPLE;
        // l4 = 32 bits -> 4-byte rid entries; l2 = 28 -> 4-byte base entries.
        assert_eq!(e.rid_entry_shift(), 2);
        assert_eq!(e.base_entry_shift(), 2);
        assert_eq!(e.prefix(), 0xf000_0000_0000_0000);
    }

    #[test]
    fn paper_example_nvbase_extraction() {
        // The worked example: a region loaded at segment base
        // 0xfffffffd00000000 has nvbase 0xffffffd.
        let e = ExactLayout::PAPER_EXAMPLE;
        // (0xfffffffd00000000 >> 32) & 0x0fffffff = 0xffffffd.
        assert_eq!(e.nvbase_of(0xffff_fffd_0000_0000), 0xffffffd);
        assert_eq!(e.offset_of(0xffff_fffd_1234_5678), 0x1234_5678);
        assert_eq!(e.get_base(0xffff_fffd_1234_5678), 0xffff_fffd_0000_0000);
    }

    #[test]
    fn same_segment_addresses_share_rid_entry() {
        let e = ExactLayout::PAPER_EXAMPLE;
        let a1 = 0xffff_fffd_0000_0000u64;
        let a2 = 0xffff_fffd_1234_5678u64;
        assert_eq!(e.rid_entry_addr_for(a1), e.rid_entry_addr_for(a2));
    }

    #[test]
    fn base_entry_addr_has_flag_bit() {
        let e = ExactLayout::PAPER_EXAMPLE;
        let addr = e.base_entry_addr(8);
        // rid 8 strided by 4 bytes -> low bits 0x20; flag at bit 34.
        assert_eq!(addr & 0xffff_ffff, 0x20);
        assert_ne!(addr & (1u64 << 34), 0);
        assert_eq!(e.classify(addr), Some(Area::BaseTable));
    }

    #[test]
    fn areas_are_pairwise_disjoint_for_paper_configs() {
        for e in [ExactLayout::PAPER_EXAMPLE, ExactLayout::PAPER_LARGE] {
            let (_r_lo, r_hi) = e.area_span(Area::RidTable);
            let (b_lo, b_hi) = e.area_span(Area::BaseTable);
            let (d_lo, _d_hi) = e.area_span(Area::Data);
            assert!(r_hi <= b_lo, "rid table below base table");
            assert!(b_hi <= d_lo, "base table below data area");
        }
    }

    #[test]
    fn classify_matches_constructors() {
        let e = ExactLayout::PAPER_EXAMPLE;
        let nvb = e.first_usable_nvbase() | 5;
        assert_eq!(e.classify(e.data_addr(nvb, 1234)), Some(Area::Data));
        assert_eq!(e.classify(e.rid_entry_addr(nvb)), Some(Area::RidTable));
        assert_eq!(e.classify(e.base_entry_addr(77)), Some(Area::BaseTable));
        // A non-NV address classifies as None.
        assert_eq!(e.classify(0x0000_7fff_dead_beef), None);
    }

    #[test]
    fn exact_layout_rejects_violations() {
        // l1+l2+l3 != 64
        assert!(ExactLayout {
            l1: 4,
            l2: 28,
            l3: 30,
            l4: 32
        }
        .validate()
        .is_err());
        // l4 < l2
        assert!(ExactLayout {
            l1: 4,
            l2: 28,
            l3: 32,
            l4: 20
        }
        .validate()
        .is_err());
        // l4 + sb < l3 (flag bit below the nvbase section)
        assert!(ExactLayout {
            l1: 2,
            l2: 20,
            l3: 42,
            l4: 30
        }
        .validate()
        .is_err());
    }
}
