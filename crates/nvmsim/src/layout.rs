//! NV-space bit layouts.
//!
//! Two things live here:
//!
//! * [`Layout`] — the *runtime* configuration used by the simulated NV space
//!   ([`crate::nvspace::NvSpace`]): how many bits address a byte within a
//!   chunk (`lc`), how many bits index chunks (`l2`), how large a region
//!   may grow (`l3`, the RIV offset field width), and how many bits a
//!   region ID may use (`l4`). This mirrors the paper's Figure 6 with the
//!   NV-space origin relocated into user space (substitution S1 in
//!   DESIGN.md) and the paper's fixed segments generalized to chunk runs
//!   (the translation tables stay direct-mapped, one entry per chunk).
//!
//! * [`ExactLayout`] — a faithful arithmetic model of the paper's Figure 6/7
//!   scheme, including the leading-ones prefix and the *flagging bits* that
//!   keep the RID table, the base table, and the data area disjoint when all
//!   three are carved out of one address range purely by bit patterns. The
//!   simulator does not execute through this model (the kernel owns the top
//!   of the address space on Linux), but the model is property-tested so the
//!   paper's address-encoding claims are reproduced at the arithmetic level.

use crate::error::{NvError, Result};

/// Ceiling of `bits / 8`: the number of bytes needed to store `bits` bits.
/// This is the paper's `⌈L/8⌉` used for table entry sizes.
pub const fn bytes_for_bits(bits: u32) -> u32 {
    bits.div_ceil(8)
}

/// `⌈log2(n)⌉` for `n >= 1`: the shift that strides entries of `n` bytes.
pub const fn ceil_log2(n: u32) -> u32 {
    if n <= 1 {
        0
    } else {
        u32::BITS - (n - 1).leading_zeros()
    }
}

// ---------------------------------------------------------------------------
// Runtime layout
// ---------------------------------------------------------------------------

/// Bits indexing base-table entries within one committed base-table page:
/// pages hold `2^BASE_PAGE_BITS` 8-byte entries (64 KiB) and are committed
/// on demand the first time a region ID in their range is bound.
pub const BASE_PAGE_BITS: u32 = 13;

/// Runtime NV-space configuration.
///
/// The data area is a pool of `2^l2` *chunks* of `2^lc` bytes each; a region
/// occupies a contiguous run of chunks and may grow, chunk by chunk, up to
/// `2^l3` bytes. Region IDs range over `[1, 2^l4)`; ID 0 is reserved as the
/// null region.
///
/// A RIV pointer value packs as `FLAG | rid << l3 | offset` where `FLAG` is
/// bit 63, playing the role of the paper's leading-ones prefix (it marks the
/// value as an NV pointer and keeps `rid + offset` confined to 63 bits).
/// `l3` is therefore the *maximum region size* exponent — the width of the
/// offset field — while `lc` is the translation granule: the RID table has
/// one entry per chunk, so the paper's Addr2ID stays bit transformations
/// plus a single load even though regions span many chunks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Layout {
    /// Bits indexing chunks; the NV space holds `2^l2` chunks.
    pub l2: u32,
    /// Bits addressing bytes within a chunk; chunks are `2^lc` bytes.
    pub lc: u32,
    /// Bits of the RIV offset field; regions are at most `2^l3` bytes.
    pub l3: u32,
    /// Bits for region IDs; valid IDs are `1 ..= 2^l4 - 1`.
    pub l4: u32,
}

impl Layout {
    /// The default simulation layout: 16384 chunks of 4 MiB (64 GiB of
    /// virtual data area), regions up to 4 GiB, and 20-bit region IDs.
    pub const DEFAULT: Layout = Layout {
        l2: 14,
        lc: 22,
        l3: 32,
        l4: 20,
    };

    /// Creates a layout after validating the paper's constraints plus the
    /// simulator's practical bounds.
    ///
    /// # Errors
    ///
    /// [`NvError::BadLayout`] when a constraint is violated; the message
    /// names the offending constraint.
    pub fn new(l2: u32, lc: u32, l3: u32, l4: u32) -> Result<Layout> {
        let lay = Layout { l2, lc, l3, l4 };
        lay.validate()?;
        Ok(lay)
    }

    /// Validates the layout. See [`Layout::new`].
    pub fn validate(&self) -> Result<()> {
        let Layout { l2, lc, l3, l4 } = *self;
        if lc < 12 {
            return Err(NvError::BadLayout(format!(
                "chunk bits lc ({lc}) must be >= 12 (one page)"
            )));
        }
        if l3 < lc {
            return Err(NvError::BadLayout(format!(
                "max-region bits l3 ({l3}) must be >= chunk bits lc ({lc})"
            )));
        }
        if l3 > l2 + lc {
            return Err(NvError::BadLayout(format!(
                "max region of 2^l3 = 2^{l3} bytes cannot exceed the 2^(l2+lc) = 2^{} data area",
                l2 + lc
            )));
        }
        if l2 + lc > 46 {
            return Err(NvError::BadLayout(format!(
                "data area of 2^(l2+lc) = 2^{} bytes exceeds the 2^46 reservation cap",
                l2 + lc
            )));
        }
        if l4 > 28 {
            return Err(NvError::BadLayout(format!(
                "l4 ({l4}) > 28 would need a base-table directory larger than practical"
            )));
        }
        if l4 + l3 > 63 {
            return Err(NvError::BadLayout(format!(
                "rid and offset (l4 + l3 = {}) must fit in 63 bits of a RIV value",
                l4 + l3
            )));
        }
        Ok(())
    }

    /// Number of chunks in the data area.
    pub fn chunk_count(&self) -> usize {
        1usize << self.l2
    }

    /// Size of one chunk in bytes.
    pub fn chunk_size(&self) -> usize {
        1usize << self.lc
    }

    /// Mask extracting the within-chunk offset from an address.
    pub fn chunk_mask(&self) -> usize {
        self.chunk_size() - 1
    }

    /// Total size of the data area in bytes.
    pub fn data_area_size(&self) -> usize {
        self.chunk_count() << self.lc
    }

    /// Largest size a single region may reach (the RIV offset field width).
    pub fn max_region_size(&self) -> usize {
        1usize << self.l3
    }

    /// Number of chunks needed to hold `bytes` (at least one).
    pub fn chunks_for(&self, bytes: usize) -> usize {
        bytes.div_ceil(self.chunk_size()).max(1)
    }

    /// Largest valid region ID.
    pub fn max_rid(&self) -> u32 {
        ((1u64 << self.l4) - 1) as u32
    }

    /// Mask extracting the offset field from a RIV value. Note that under
    /// chunked placement this is *not* an address mask: region bases are
    /// `2^lc`-aligned, not `2^l3`-aligned, so within-region offsets come
    /// from the RID-table entry (chunk index within the region), never from
    /// masking an absolute address.
    pub fn offset_mask(&self) -> usize {
        self.max_region_size() - 1
    }

    /// Size in bytes of the RID table (`2^l2` entries, one per chunk).
    ///
    /// Entries are 8 bytes: the low 32 bits hold the region ID mapped at
    /// the chunk (0 = none), the high 32 bits the chunk's index *within*
    /// its region, so one aligned `u64` load yields both the ID and the
    /// region base (paper Figure 7 (b) with a widened entry).
    pub fn rid_table_size(&self) -> usize {
        self.chunk_count() * 8
    }

    /// Number of 8-byte entries in one base-table page.
    pub fn base_page_entries(&self) -> usize {
        1usize << BASE_PAGE_BITS.min(self.l4)
    }

    /// Size in bytes of one base-table page.
    pub fn base_page_size(&self) -> usize {
        self.base_page_entries() * 8
    }

    /// Number of first-level directory slots in the two-level base table.
    pub fn base_l1_len(&self) -> usize {
        (1usize << self.l4).div_ceil(self.base_page_entries())
    }

    /// Virtual size in bytes of the base table (`2^l4` entries, one per
    /// region ID).
    ///
    /// Entries are 8 bytes and hold the region's absolute base directly
    /// (the paper stores the `nvbase` bits — `⌈l2/8⌉` bytes — which is the
    /// same information modulo the shift; we widen the entry so `ID2Addr`
    /// is a single load with no recombination). The table is two-level:
    /// only a small directory is committed up front and 64 KiB pages are
    /// committed as region IDs in their range are first bound, so `l4` can
    /// scale far past the old single-level geometry.
    pub fn base_table_size(&self) -> usize {
        (1usize << self.l4) * 8
    }

    /// Whether `rid` is a usable region ID under this layout.
    pub fn rid_in_range(&self, rid: u32) -> bool {
        rid >= 1 && rid <= self.max_rid()
    }
}

impl Default for Layout {
    fn default() -> Self {
        Layout::DEFAULT
    }
}

// ---------------------------------------------------------------------------
// Paper-exact model (Figures 6 and 7)
// ---------------------------------------------------------------------------

/// Arithmetic model of the paper's exact NV-space address encodings.
///
/// In the paper the NV space occupies the top of the 64-bit address space:
/// every NV address starts with `l1` one-bits. Below that prefix, three
/// areas are distinguished purely by bit patterns:
///
/// * **RID table** (bottom): entry for segment `nvbase` at
///   `prefix | nvbase << rid_entry_shift`; the entry holds the region ID.
/// * **Base table** (middle): entry for region `rid` at
///   `prefix | 1 << (l4 + base_entry_shift) | rid << base_entry_shift`; the
///   set *flagging bit* at position `l4 + base_entry_shift` lifts the base
///   table above the RID table. The entry holds the segment's `nvbase`.
/// * **Data area** (top): `prefix | nvbase << l3 | offset` where the most
///   significant bit of `nvbase` is 1 (the paper's `11`/`10` flagging
///   bits), lifting all data addresses above both tables.
///
/// [`ExactLayout::validate`] enforces the constraints stated in Section 4.3;
/// the unit and property tests verify the disjointness and round-trip claims.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ExactLayout {
    /// Leading one-bits marking NV-space addresses.
    pub l1: u32,
    /// Bits of `nvbase` (segment index).
    pub l2: u32,
    /// Bits of within-segment offset.
    pub l3: u32,
    /// Bits of region ID.
    pub l4: u32,
}

/// The three NV-space areas an address can fall into, per the exact model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Area {
    /// Direct-mapped table holding region IDs, indexed by segment.
    RidTable,
    /// Direct-mapped table holding segment bases, indexed by region ID.
    BaseTable,
    /// NV segments holding region data.
    Data,
}

impl ExactLayout {
    /// The configuration used in the paper's worked example (Section 4.3).
    pub const PAPER_EXAMPLE: ExactLayout = ExactLayout {
        l1: 4,
        l2: 28,
        l3: 32,
        l4: 32,
    };

    /// The large-region configuration quoted in the paper's discussion.
    pub const PAPER_LARGE: ExactLayout = ExactLayout {
        l1: 2,
        l2: 24,
        l3: 38,
        l4: 58,
    };

    /// Byte stride shift between RID-table entries (`⌈log2 ⌈l4/8⌉⌉`).
    pub fn rid_entry_shift(&self) -> u32 {
        ceil_log2(bytes_for_bits(self.l4))
    }

    /// Byte stride shift between base-table entries (`⌈log2 ⌈l2/8⌉⌉`).
    pub fn base_entry_shift(&self) -> u32 {
        ceil_log2(bytes_for_bits(self.l2))
    }

    /// The all-ones prefix occupying the top `l1` bits.
    pub fn prefix(&self) -> u64 {
        if self.l1 == 0 {
            0
        } else {
            !0u64 << (64 - self.l1)
        }
    }

    /// Validates the constraints of Section 4.3.
    ///
    /// # Errors
    ///
    /// [`NvError::BadLayout`] naming the violated constraint.
    pub fn validate(&self) -> Result<()> {
        let ExactLayout { l1, l2, l3, l4 } = *self;
        let sb = self.base_entry_shift();
        if l1 + l2 + l3 != 64 {
            return Err(NvError::BadLayout(format!(
                "l1 + l2 + l3 must be 64, got {l1} + {l2} + {l3}"
            )));
        }
        if l4 < l2 {
            return Err(NvError::BadLayout(format!(
                "l4 ({l4}) must be >= l2 ({l2})"
            )));
        }
        // Figure 6 caption: L4 + ceil(log(L2/8)) >= L3 — the base table's
        // flagging bit must reach the nvbase section of data addresses.
        if l4 + sb < l3 {
            return Err(NvError::BadLayout(format!(
                "l4 + base_entry_shift ({l4} + {sb}) must be >= l3 ({l3})"
            )));
        }
        // Discussion: L4 + ceil(log(L2/8)) <= 62 - L1 — room for flag bits.
        if l4 + sb > 62 - l1 {
            return Err(NvError::BadLayout(format!(
                "l4 + base_entry_shift ({l4} + {sb}) must be <= 62 - l1 ({})",
                62 - l1
            )));
        }
        // Data addresses (flagged nvbase, lowest is 2^(l2-1+l3)) must clear
        // the base table (topmost is below 2^(l4+sb+1)).
        if l2 - 1 + l3 < l4 + sb + 1 {
            return Err(NvError::BadLayout(format!(
                "data area (from bit {}) would overlap the base table (up to bit {})",
                l2 - 1 + l3,
                l4 + sb + 1
            )));
        }
        Ok(())
    }

    /// Number of usable data segments (those whose `nvbase` has the flag
    /// bit set — half of `2^l2`).
    pub fn usable_segments(&self) -> u64 {
        1u64 << (self.l2 - 1)
    }

    /// Lowest usable `nvbase` value (flag bit set).
    pub fn first_usable_nvbase(&self) -> u64 {
        1u64 << (self.l2 - 1)
    }

    /// Address of the RID-table entry for segment `nvbase`.
    ///
    /// This is the paper's Figure 7 (b) transformation applied to a segment
    /// base address: shift out the offset, mask to `l2` bits, stride by the
    /// entry size, and set the prefix.
    pub fn rid_entry_addr(&self, nvbase: u64) -> u64 {
        debug_assert!(nvbase < (1u64 << self.l2));
        self.prefix() | (nvbase << self.rid_entry_shift())
    }

    /// Address of the RID-table entry for an arbitrary *data* address: the
    /// same transformation, starting from the full address.
    pub fn rid_entry_addr_for(&self, addr: u64) -> u64 {
        self.rid_entry_addr(self.nvbase_of(addr))
    }

    /// Address of the base-table entry for region `rid` (Figure 7 (c)).
    pub fn base_entry_addr(&self, rid: u64) -> u64 {
        debug_assert!(rid < (1u64 << self.l4));
        let flag = 1u64 << (self.l4 + self.base_entry_shift());
        self.prefix() | flag | (rid << self.base_entry_shift())
    }

    /// Composes a data-area address from a flagged `nvbase` and an offset.
    ///
    /// # Panics
    ///
    /// Debug-asserts that `nvbase` has its flag (top) bit set and that the
    /// offset fits in `l3` bits.
    pub fn data_addr(&self, nvbase: u64, offset: u64) -> u64 {
        debug_assert!(nvbase >> (self.l2 - 1) == 1, "nvbase flag bit must be set");
        debug_assert!(offset < (1u64 << self.l3));
        self.prefix() | (nvbase << self.l3) | offset
    }

    /// Extracts the `nvbase` section from an NV-space address.
    pub fn nvbase_of(&self, addr: u64) -> u64 {
        (addr >> self.l3) & ((1u64 << self.l2) - 1)
    }

    /// Extracts the within-segment offset from an NV-space address.
    pub fn offset_of(&self, addr: u64) -> u64 {
        addr & ((1u64 << self.l3) - 1)
    }

    /// `getBase` from Figure 5 (c): masks the low `l3` bits.
    pub fn get_base(&self, addr: u64) -> u64 {
        addr & !((1u64 << self.l3) - 1)
    }

    /// Classifies an NV-space address into the area its bit pattern selects,
    /// or `None` if the pattern belongs to the gaps between areas.
    pub fn classify(&self, addr: u64) -> Option<Area> {
        if self.l1 > 0 && addr >> (64 - self.l1) != self.prefix() >> (64 - self.l1) {
            return None;
        }
        let low = addr & !self.prefix();
        if low >> (self.l2 - 1 + self.l3) != 0 {
            return Some(Area::Data);
        }
        let base_lo = 1u64 << (self.l4 + self.base_entry_shift());
        if low >= base_lo && low < base_lo << 1 {
            return Some(Area::BaseTable);
        }
        if low < (1u64 << (self.l2 + self.rid_entry_shift())) {
            return Some(Area::RidTable);
        }
        None
    }

    /// The half-open byte span `[lo, hi)` occupied by an area.
    pub fn area_span(&self, area: Area) -> (u64, u64) {
        let p = self.prefix();
        match area {
            Area::RidTable => {
                let entry = 1u64 << self.rid_entry_shift();
                (p, p + (1u64 << self.l2) * entry)
            }
            Area::BaseTable => {
                let lo = 1u64 << (self.l4 + self.base_entry_shift());
                (p + lo, p + (lo << 1))
            }
            Area::Data => {
                let lo = 1u64 << (self.l2 - 1 + self.l3);
                // Top of the data area is the top of the address space.
                (
                    p + lo,
                    p.wrapping_add(1u64 << (self.l2 + self.l3))
                        .wrapping_sub(1)
                        .wrapping_add(1),
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers() {
        assert_eq!(bytes_for_bits(8), 1);
        assert_eq!(bytes_for_bits(9), 2);
        assert_eq!(bytes_for_bits(28), 4);
        assert_eq!(bytes_for_bits(32), 4);
        assert_eq!(bytes_for_bits(58), 8);
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(4), 2);
        assert_eq!(ceil_log2(8), 3);
    }

    #[test]
    fn default_layout_is_valid() {
        Layout::DEFAULT.validate().unwrap();
        assert_eq!(Layout::default(), Layout::DEFAULT);
        assert_eq!(Layout::DEFAULT.chunk_size(), 4 << 20);
        assert_eq!(Layout::DEFAULT.chunk_count(), 16384);
        assert_eq!(Layout::DEFAULT.max_region_size(), 4 << 30);
        assert_eq!(Layout::DEFAULT.data_area_size(), 64 << 30);
        assert_eq!(Layout::DEFAULT.max_rid(), (1 << 20) - 1);
        assert!(Layout::DEFAULT.rid_in_range(1));
        assert!(Layout::DEFAULT.rid_in_range((1 << 20) - 1));
        assert!(!Layout::DEFAULT.rid_in_range(0));
        assert!(!Layout::DEFAULT.rid_in_range(1 << 20));
    }

    #[test]
    fn chunk_helpers() {
        let l = Layout::DEFAULT;
        assert_eq!(l.chunks_for(0), 1);
        assert_eq!(l.chunks_for(1), 1);
        assert_eq!(l.chunks_for(l.chunk_size()), 1);
        assert_eq!(l.chunks_for(l.chunk_size() + 1), 2);
        assert_eq!(l.chunks_for(3 * l.chunk_size()), 3);
        assert_eq!(l.chunk_mask(), l.chunk_size() - 1);
        assert_eq!(l.offset_mask(), l.max_region_size() - 1);
    }

    #[test]
    fn base_table_two_level_geometry() {
        let l = Layout::DEFAULT;
        assert_eq!(l.base_page_entries(), 1 << BASE_PAGE_BITS);
        assert_eq!(l.base_page_size(), 64 << 10);
        assert_eq!(
            l.base_l1_len() * l.base_page_entries() * 8,
            l.base_table_size()
        );
        // A tiny l4 collapses to a single partial page.
        let s = Layout::new(6, 16, 20, 6).unwrap();
        assert_eq!(s.base_page_entries(), 1 << 6);
        assert_eq!(s.base_l1_len(), 1);
    }

    #[test]
    fn layout_rejects_bad_configs() {
        assert!(Layout::new(8, 8, 20, 16).is_err(), "tiny chunks");
        assert!(Layout::new(8, 22, 20, 16).is_err(), "l3 < lc");
        assert!(Layout::new(8, 22, 34, 16).is_err(), "l3 past the data area");
        assert!(Layout::new(26, 22, 32, 16).is_err(), "data area too big");
        assert!(Layout::new(14, 22, 32, 29).is_err(), "base directory cap");
        assert!(Layout::new(14, 22, 40, 24).is_err(), "riv overflow");
        assert!(Layout::new(14, 22, 32, 20).is_ok());
        assert!(Layout::new(6, 16, 20, 6).is_ok(), "small test geometry");
    }

    #[test]
    fn paper_example_config_is_valid() {
        ExactLayout::PAPER_EXAMPLE.validate().unwrap();
        ExactLayout::PAPER_LARGE.validate().unwrap();
    }

    #[test]
    fn paper_example_entry_strides() {
        let e = ExactLayout::PAPER_EXAMPLE;
        // l4 = 32 bits -> 4-byte rid entries; l2 = 28 -> 4-byte base entries.
        assert_eq!(e.rid_entry_shift(), 2);
        assert_eq!(e.base_entry_shift(), 2);
        assert_eq!(e.prefix(), 0xf000_0000_0000_0000);
    }

    #[test]
    fn paper_example_nvbase_extraction() {
        // The worked example: a region loaded at segment base
        // 0xfffffffd00000000 has nvbase 0xffffffd.
        let e = ExactLayout::PAPER_EXAMPLE;
        // (0xfffffffd00000000 >> 32) & 0x0fffffff = 0xffffffd.
        assert_eq!(e.nvbase_of(0xffff_fffd_0000_0000), 0xffffffd);
        assert_eq!(e.offset_of(0xffff_fffd_1234_5678), 0x1234_5678);
        assert_eq!(e.get_base(0xffff_fffd_1234_5678), 0xffff_fffd_0000_0000);
    }

    #[test]
    fn same_segment_addresses_share_rid_entry() {
        let e = ExactLayout::PAPER_EXAMPLE;
        let a1 = 0xffff_fffd_0000_0000u64;
        let a2 = 0xffff_fffd_1234_5678u64;
        assert_eq!(e.rid_entry_addr_for(a1), e.rid_entry_addr_for(a2));
    }

    #[test]
    fn base_entry_addr_has_flag_bit() {
        let e = ExactLayout::PAPER_EXAMPLE;
        let addr = e.base_entry_addr(8);
        // rid 8 strided by 4 bytes -> low bits 0x20; flag at bit 34.
        assert_eq!(addr & 0xffff_ffff, 0x20);
        assert_ne!(addr & (1u64 << 34), 0);
        assert_eq!(e.classify(addr), Some(Area::BaseTable));
    }

    #[test]
    fn areas_are_pairwise_disjoint_for_paper_configs() {
        for e in [ExactLayout::PAPER_EXAMPLE, ExactLayout::PAPER_LARGE] {
            let (_r_lo, r_hi) = e.area_span(Area::RidTable);
            let (b_lo, b_hi) = e.area_span(Area::BaseTable);
            let (d_lo, _d_hi) = e.area_span(Area::Data);
            assert!(r_hi <= b_lo, "rid table below base table");
            assert!(b_hi <= d_lo, "base table below data area");
        }
    }

    #[test]
    fn classify_matches_constructors() {
        let e = ExactLayout::PAPER_EXAMPLE;
        let nvb = e.first_usable_nvbase() | 5;
        assert_eq!(e.classify(e.data_addr(nvb, 1234)), Some(Area::Data));
        assert_eq!(e.classify(e.rid_entry_addr(nvb)), Some(Area::RidTable));
        assert_eq!(e.classify(e.base_entry_addr(77)), Some(Area::BaseTable));
        // A non-NV address classifies as None.
        assert_eq!(e.classify(0x0000_7fff_dead_beef), None);
    }

    #[test]
    fn exact_layout_rejects_violations() {
        // l1+l2+l3 != 64
        assert!(ExactLayout {
            l1: 4,
            l2: 28,
            l3: 30,
            l4: 32
        }
        .validate()
        .is_err());
        // l4 < l2
        assert!(ExactLayout {
            l1: 4,
            l2: 28,
            l3: 32,
            l4: 20
        }
        .validate()
        .is_err());
        // l4 + sb < l3 (flag bit below the nvbase section)
        assert!(ExactLayout {
            l1: 2,
            l2: 20,
            l3: 42,
            l4: 30
        }
        .validate()
        .is_err());
    }
}
