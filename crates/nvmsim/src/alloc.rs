//! Intra-region persistent-memory allocator.
//!
//! Every piece of allocator state lives *inside the region it manages* and
//! is expressed in **offsets from the region base**, never absolute
//! addresses. A region image is therefore position independent by
//! construction: it can be written to a file, reopened at any segment base,
//! and the allocator resumes exactly where it left off.
//!
//! The design is a conventional segregated-fit allocator:
//!
//! * sizes up to [`MAX_CLASS_SIZE`] round up to one of [`CLASS_SIZES`] and
//!   are served LIFO from per-class free lists (offset-linked);
//! * larger sizes are served first-fit from a single large-block list, or
//!   carved from the bump frontier;
//! * the bump frontier is the fallback for empty free lists.
//!
//! Free-list links are stored in the first 8 bytes of each free block;
//! large free blocks additionally store their size in the next 8 bytes.

use crate::error::{NvError, Result};

/// Allocation size classes in bytes. All are multiples of [`MIN_ALIGN`].
pub const CLASS_SIZES: [usize; 16] = [
    16, 32, 48, 64, 96, 128, 192, 256, 384, 512, 768, 1024, 1536, 2048, 3072, 4096,
];

/// Largest size served by a class free list.
pub const MAX_CLASS_SIZE: usize = 4096;

/// Alignment of every allocation. Callers may not request more.
pub const MIN_ALIGN: usize = 16;

/// Number of segregated size classes.
pub const NUM_CLASSES: usize = CLASS_SIZES.len();

/// Returns the class index for `size`, or `None` for large sizes.
#[inline]
pub fn class_for(size: usize) -> Option<usize> {
    if size > MAX_CLASS_SIZE {
        return None;
    }
    // Branchless binary search (4 compares on 16 entries): this sits on the
    // magazine fast path, so it runs on every alloc/free.
    Some(CLASS_SIZES.partition_point(|&c| c < size))
}

/// Point-in-time allocator statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AllocStats {
    /// Bytes handed out and not yet freed (rounded sizes).
    pub live_bytes: u64,
    /// Number of live allocations.
    pub live_allocs: u64,
    /// Total `alloc` calls over the region's lifetime.
    pub alloc_calls: u64,
    /// Total `dealloc` calls over the region's lifetime.
    pub free_calls: u64,
    /// Offset of the bump frontier.
    pub bump: u64,
    /// End offset of the allocatable area.
    pub end: u64,
}

/// Allocator metadata embedded in a region header.
///
/// All fields are offsets or counters; the struct is `repr(C)` so the
/// on-media layout is stable.
#[repr(C)]
#[derive(Debug)]
pub struct AllocHeader {
    bump: u64,
    end: u64,
    free_heads: [u64; NUM_CLASSES],
    large_head: u64,
    live_bytes: u64,
    live_allocs: u64,
    alloc_calls: u64,
    free_calls: u64,
    /// Offset of the first `llalloc` bitmap page (0 = none: the region
    /// predates the two-level allocator, or is too small to host it, and
    /// runs on the legacy free lists alone). Appended after the v2
    /// counters so every pre-existing field keeps its media offset.
    ll_dir: u64,
}

impl AllocHeader {
    /// Initializes the allocator to manage `[data_start, end)` offsets.
    pub fn init(&mut self, data_start: u64, end: u64) {
        debug_assert!(data_start.is_multiple_of(MIN_ALIGN as u64));
        debug_assert!(data_start <= end);
        self.bump = data_start;
        self.end = end;
        self.free_heads = [0; NUM_CLASSES];
        self.large_head = 0;
        self.live_bytes = 0;
        self.live_allocs = 0;
        self.alloc_calls = 0;
        self.free_calls = 0;
        self.ll_dir = 0;
    }

    /// Extends the managed range to end at `new_end` (in-place region
    /// growth): the bump frontier and free lists are untouched — the new
    /// bytes are simply more frontier to carve. Shrinking is not
    /// supported; a smaller `new_end` is ignored.
    pub fn extend(&mut self, new_end: u64) {
        if new_end > self.end {
            self.end = new_end;
        }
    }

    /// An all-zero header (no managed range yet); call
    /// [`AllocHeader::init`] before use.
    #[cfg(test)]
    pub(crate) fn zeroed() -> AllocHeader {
        AllocHeader {
            bump: 0,
            end: 0,
            free_heads: [0; NUM_CLASSES],
            large_head: 0,
            live_bytes: 0,
            live_allocs: 0,
            alloc_calls: 0,
            free_calls: 0,
            ll_dir: 0,
        }
    }

    /// Offset of the first `llalloc` bitmap page (0 = legacy-only).
    pub(crate) fn ll_dir(&self) -> u64 {
        self.ll_dir
    }

    /// Points the bitmap-page directory at `off`.
    pub(crate) fn set_ll_dir(&mut self, off: u64) {
        self.ll_dir = off;
    }

    /// Bytes available at the bump frontier once it is rounded up to
    /// `align`.
    pub(crate) fn remaining_aligned(&self, align: u64) -> u64 {
        let aligned = self.bump.next_multiple_of(align);
        self.end.saturating_sub(aligned)
    }

    /// Carves `bytes` from the bump frontier at `align` alignment (for
    /// `llalloc` spans and bitmap pages; the alignment gap is discarded).
    /// Statistics counters are not touched — the carved span is
    /// allocator metadata or bitmap-managed capacity, not an application
    /// block.
    pub(crate) fn carve_aligned(&mut self, bytes: u64, align: u64) -> Result<u64> {
        let off = self.bump.next_multiple_of(align);
        let next = off.checked_add(bytes).ok_or(NvError::OutOfMemory {
            region: 0,
            requested: bytes as usize,
        })?;
        if next > self.end {
            return Err(NvError::OutOfMemory {
                region: 0,
                requested: bytes as usize,
            });
        }
        self.bump = next;
        Ok(off)
    }

    /// Rounds a request up to its served size.
    pub fn rounded_size(size: usize) -> usize {
        let size = size.max(MIN_ALIGN);
        match class_for(size) {
            Some(c) => CLASS_SIZES[c],
            None => (size + MIN_ALIGN - 1) & !(MIN_ALIGN - 1),
        }
    }

    #[inline]
    unsafe fn read_u64(base: usize, off: u64) -> u64 {
        *((base + off as usize) as *const u64)
    }

    #[inline]
    unsafe fn write_u64(base: usize, off: u64, v: u64) {
        *((base + off as usize) as *mut u64) = v;
    }

    /// Allocates `size` bytes with alignment `align`, returning the offset
    /// of the block from the region base.
    ///
    /// # Errors
    ///
    /// [`NvError::OutOfMemory`] when neither a free block nor bump space is
    /// available.
    ///
    /// # Panics
    ///
    /// Panics if `align > MIN_ALIGN` or `size == 0`.
    ///
    /// # Safety
    ///
    /// `base` must be the base address of the mapped region whose header
    /// contains `self`, and the region must stay mapped for the duration of
    /// the call.
    pub unsafe fn alloc(&mut self, base: usize, size: usize, align: usize) -> Result<u64> {
        assert!(size > 0, "zero-size allocation");
        assert!(
            align <= MIN_ALIGN && MIN_ALIGN.is_multiple_of(align.max(1)),
            "alignment beyond {MIN_ALIGN} is not supported"
        );
        self.alloc_calls += 1;
        let rounded = Self::rounded_size(size);
        let off = if let Some(class) = class_for(rounded) {
            let head = self.free_heads[class];
            if head != 0 {
                self.free_heads[class] = Self::read_u64(base, head);
                head
            } else {
                self.bump_alloc(rounded)?
            }
        } else {
            match self.large_fit(base, rounded) {
                Some(off) => off,
                None => self.bump_alloc(rounded)?,
            }
        };
        self.live_bytes += rounded as u64;
        self.live_allocs += 1;
        Ok(off)
    }

    fn bump_alloc(&mut self, rounded: usize) -> Result<u64> {
        let off = self.bump;
        let next = off + rounded as u64;
        if next > self.end {
            return Err(NvError::OutOfMemory {
                region: 0,
                requested: rounded,
            });
        }
        self.bump = next;
        Ok(off)
    }

    /// First-fit scan of the large list; removes and returns a block of at
    /// least `rounded` bytes whose waste is below half the request.
    unsafe fn large_fit(&mut self, base: usize, rounded: usize) -> Option<u64> {
        let mut prev: u64 = 0;
        let mut cur = self.large_head;
        while cur != 0 {
            let next = Self::read_u64(base, cur);
            let bsize = Self::read_u64(base, cur + 8) as usize;
            if bsize >= rounded && bsize - rounded <= rounded / 2 {
                if prev == 0 {
                    self.large_head = next;
                } else {
                    Self::write_u64(base, prev, next);
                }
                return Some(cur);
            }
            prev = cur;
            cur = next;
        }
        None
    }

    /// Returns the block at `off` (allocated with `size`) to the allocator.
    ///
    /// # Safety
    ///
    /// `base` must be the region base; `(off, size)` must exactly describe a
    /// block previously returned by [`AllocHeader::alloc`] on this header
    /// with the same (pre-rounding) `size`, not freed since.
    pub unsafe fn dealloc(&mut self, base: usize, off: u64, size: usize) {
        debug_assert!(off.is_multiple_of(MIN_ALIGN as u64));
        let rounded = Self::rounded_size(size);
        debug_assert!(off + rounded as u64 <= self.end);
        self.free_calls += 1;
        self.live_bytes = self.live_bytes.saturating_sub(rounded as u64);
        self.live_allocs = self.live_allocs.saturating_sub(1);
        if let Some(class) = class_for(rounded) {
            Self::write_u64(base, off, self.free_heads[class]);
            self.free_heads[class] = off;
        } else {
            Self::write_u64(base, off, self.large_head);
            Self::write_u64(base, off + 8, rounded as u64);
            self.large_head = off;
        }
    }

    /// Unlinks up to `out.len()` blocks of class `class` in one pass,
    /// serving from the class free list first and carving the remainder
    /// from the bump frontier. Returns how many offsets were written to
    /// `out` (possibly zero when the region is exhausted).
    ///
    /// Statistics counters are *not* touched: batch-carved blocks belong
    /// to a volatile magazine, not to the application, and the region
    /// layer folds its own counters into the header separately (see
    /// `nvmsim::magazine`).
    ///
    /// # Safety
    ///
    /// As [`AllocHeader::alloc`]: `base` must be the base of the mapped
    /// region containing `self`.
    pub unsafe fn carve_batch(&mut self, base: usize, class: usize, out: &mut [u64]) -> usize {
        let bsize = CLASS_SIZES[class];
        let mut n = 0;
        let mut head = self.free_heads[class];
        while n < out.len() && head != 0 {
            out[n] = head;
            head = Self::read_u64(base, head);
            n += 1;
        }
        self.free_heads[class] = head;
        while n < out.len() {
            match self.bump_alloc(bsize) {
                Ok(off) => {
                    out[n] = off;
                    n += 1;
                }
                Err(_) => break,
            }
        }
        n
    }

    /// Pushes a batch of class-`class` blocks back onto the persistent
    /// free list (LIFO, so `blocks` ends up popped in reverse order).
    /// Statistics counters are *not* touched; see [`AllocHeader::carve_batch`].
    ///
    /// # Safety
    ///
    /// `base` must be the region base; every offset in `blocks` must be a
    /// class-`class` block previously carved from this header and not
    /// currently on any free list or in use.
    pub unsafe fn restore_batch(&mut self, base: usize, class: usize, blocks: &[u64]) {
        for &off in blocks {
            debug_assert!(off.is_multiple_of(MIN_ALIGN as u64));
            debug_assert!(off + CLASS_SIZES[class] as u64 <= self.end);
            Self::write_u64(base, off, self.free_heads[class]);
            self.free_heads[class] = off;
        }
    }

    /// Overwrites the persisted statistics counters. The region layer
    /// tracks the live counters in volatile atomics (so the magazine fast
    /// path never touches the shared header) and folds them in here at
    /// every refill, flush, sync, and close.
    pub fn set_stat_counters(
        &mut self,
        live_bytes: u64,
        live_allocs: u64,
        alloc_calls: u64,
        free_calls: u64,
    ) {
        self.live_bytes = live_bytes;
        self.live_allocs = live_allocs;
        self.alloc_calls = alloc_calls;
        self.free_calls = free_calls;
    }

    /// Bytes still available at the bump frontier (free-list contents not
    /// included).
    pub fn remaining(&self) -> u64 {
        self.end - self.bump
    }

    /// Current statistics.
    pub fn stats(&self) -> AllocStats {
        AllocStats {
            live_bytes: self.live_bytes,
            live_allocs: self.live_allocs,
            alloc_calls: self.alloc_calls,
            free_calls: self.free_calls,
            bump: self.bump,
            end: self.end,
        }
    }

    /// Cheap structural sanity check of free lists (used after reopening a
    /// persisted image). Walks each list and verifies every link stays in
    /// bounds and 16-aligned.
    ///
    /// # Errors
    ///
    /// [`NvError::BadImage`] describing the first broken invariant found.
    ///
    /// # Safety
    ///
    /// `base` must be the base of the mapped region containing `self`.
    pub unsafe fn check(&self, base: usize, data_start: u64) -> Result<()> {
        if self.bump > self.end || self.bump < data_start {
            return Err(NvError::BadImage(format!(
                "bump {} outside [{}, {}]",
                self.bump, data_start, self.end
            )));
        }
        let in_bounds = |off: u64| off >= data_start && off < self.end && off.is_multiple_of(16);
        // Structural cycle bound: a region of this size cannot hold more
        // than `max_blocks` distinct blocks, whatever the op history. (The
        // op counters are no bound at all once magazine flushes push
        // batches that were never individually `dealloc`ed.)
        let max_blocks = (self.end - data_start) / MIN_ALIGN as u64 + 1;
        for (class, &head) in self.free_heads.iter().enumerate() {
            Self::walk_list(
                base,
                head,
                max_blocks,
                &in_bounds,
                &format!("class {class} free list"),
            )?;
        }
        Self::walk_list(
            base,
            self.large_head,
            max_blocks,
            &in_bounds,
            "large free list",
        )?;
        Ok(())
    }

    /// Walks one offset-linked free list, validating every link. Cycle
    /// detection is Brent's algorithm — a corrupted next-pointer that
    /// forms an in-range cycle is caught after O(cycle length) steps
    /// instead of grinding through the worst-case block count of the
    /// region — with the structural `max_blocks` bound kept as a
    /// belt-and-braces limit.
    unsafe fn walk_list(
        base: usize,
        head: u64,
        max_blocks: u64,
        in_bounds: &dyn Fn(u64) -> bool,
        what: &str,
    ) -> Result<()> {
        let mut anchor = head;
        let mut cur = head;
        let mut steps = 0u64;
        let mut next_teleport = 2u64;
        while cur != 0 {
            if !in_bounds(cur) {
                return Err(NvError::BadImage(format!(
                    "{what} link {cur:#x} out of bounds"
                )));
            }
            cur = Self::read_u64(base, cur);
            steps += 1;
            if cur != 0 && cur == anchor {
                return Err(NvError::BadImage(format!("{what} cycle")));
            }
            if steps == next_teleport {
                anchor = cur;
                next_teleport = next_teleport.saturating_mul(2);
            }
            if steps > max_blocks {
                return Err(NvError::BadImage(format!("{what} cycle")));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A little arena standing in for a mapped region.
    struct Arena {
        mem: Vec<u8>,
        hdr: AllocHeader,
    }

    impl Arena {
        fn new(size: usize) -> Arena {
            let mut a = Arena {
                mem: vec![0u8; size],
                hdr: AllocHeader::zeroed(),
            };
            a.hdr.init(16, size as u64);
            a
        }
        fn base(&self) -> usize {
            self.mem.as_ptr() as usize
        }
        fn alloc(&mut self, size: usize) -> Result<u64> {
            unsafe { self.hdr.alloc(self.base(), size, 16) }
        }
        fn free(&mut self, off: u64, size: usize) {
            let b = self.base();
            unsafe { self.hdr.dealloc(b, off, size) }
        }
    }

    #[test]
    fn class_for_boundaries() {
        assert_eq!(class_for(1), Some(0));
        assert_eq!(class_for(16), Some(0));
        assert_eq!(class_for(17), Some(1));
        assert_eq!(class_for(4096), Some(NUM_CLASSES - 1));
        assert_eq!(class_for(4097), None);
    }

    #[test]
    fn class_for_pins_every_class_boundary() {
        // Exact class size maps to that class; one past it maps to the
        // next class (or to the large path after MAX_CLASS_SIZE).
        for (i, &sz) in CLASS_SIZES.iter().enumerate() {
            assert_eq!(class_for(sz), Some(i), "exact size {sz}");
            if i + 1 < NUM_CLASSES {
                assert_eq!(class_for(sz + 1), Some(i + 1), "size {}", sz + 1);
            }
        }
        assert_eq!(class_for(0), Some(0));
        assert_eq!(class_for(MAX_CLASS_SIZE), Some(NUM_CLASSES - 1));
        assert_eq!(class_for(MAX_CLASS_SIZE + 1), None);
        assert_eq!(class_for(usize::MAX), None);
    }

    #[test]
    fn carve_batch_drains_free_list_then_bump() {
        let mut a = Arena::new(1 << 14);
        let class = class_for(64).unwrap();
        // Two frees so the list holds two blocks; batch of 4 must take
        // both plus two fresh bump carves.
        let o1 = a.alloc(64).unwrap();
        let o2 = a.alloc(64).unwrap();
        a.free(o1, 64);
        a.free(o2, 64);
        let bump_before = a.hdr.stats().bump;
        let base = a.base();
        let mut out = [0u64; 4];
        let n = unsafe { a.hdr.carve_batch(base, class, &mut out) };
        assert_eq!(n, 4);
        // LIFO: most recently freed first.
        assert_eq!(out[0], o2);
        assert_eq!(out[1], o1);
        assert_eq!(a.hdr.free_heads[class], 0, "free list fully drained");
        assert_eq!(a.hdr.stats().bump, bump_before + 2 * 64, "two bump carves");
        // All four distinct.
        let mut sorted = out;
        sorted.sort_unstable();
        assert!(sorted.windows(2).all(|w| w[0] != w[1]));
    }

    #[test]
    fn carve_batch_returns_partial_when_exhausted() {
        let mut a = Arena::new(16 + 3 * 4096);
        let class = class_for(4096).unwrap();
        let base = a.base();
        let mut out = [0u64; 8];
        let n = unsafe { a.hdr.carve_batch(base, class, &mut out) };
        assert_eq!(n, 3, "only three 4 KiB blocks fit");
        let n2 = unsafe { a.hdr.carve_batch(base, class, &mut out) };
        assert_eq!(n2, 0, "exhausted region carves nothing");
    }

    #[test]
    fn restore_batch_roundtrips_through_carve() {
        let mut a = Arena::new(1 << 14);
        let class = class_for(128).unwrap();
        let base = a.base();
        let mut out = [0u64; 6];
        let n = unsafe { a.hdr.carve_batch(base, class, &mut out) };
        assert_eq!(n, 6);
        unsafe { a.hdr.restore_batch(base, class, &out[..n]) };
        // Carving again returns exactly the restored blocks (in reverse,
        // LIFO), with no new bump movement.
        let bump = a.hdr.stats().bump;
        let mut again = [0u64; 6];
        let m = unsafe { a.hdr.carve_batch(base, class, &mut again) };
        assert_eq!(m, 6);
        assert_eq!(a.hdr.stats().bump, bump, "served from list, not bump");
        let mut want: Vec<u64> = out[..n].to_vec();
        want.reverse();
        assert_eq!(again.to_vec(), want);
        // Counters were never touched by the batch paths.
        assert_eq!(a.hdr.stats().alloc_calls, 0);
        assert_eq!(a.hdr.stats().live_allocs, 0);
    }

    #[test]
    fn batch_carved_image_passes_check() {
        let mut a = Arena::new(1 << 14);
        let class = class_for(32).unwrap();
        let base = a.base();
        let mut out = [0u64; 16];
        let n = unsafe { a.hdr.carve_batch(base, class, &mut out) };
        // Restore without any dealloc() calls: list length exceeds
        // free_calls, which the structural cycle bound must tolerate.
        unsafe { a.hdr.restore_batch(base, class, &out[..n]) };
        assert_eq!(a.hdr.stats().free_calls, 0);
        unsafe { a.hdr.check(base, 16).unwrap() };
    }

    #[test]
    fn rounded_size_matches_classes() {
        assert_eq!(AllocHeader::rounded_size(1), 16);
        assert_eq!(AllocHeader::rounded_size(33), 48);
        assert_eq!(AllocHeader::rounded_size(4096), 4096);
        assert_eq!(AllocHeader::rounded_size(5000), 5008);
    }

    #[test]
    fn bump_allocations_do_not_overlap() {
        let mut a = Arena::new(1 << 16);
        let mut offs = Vec::new();
        for i in 1..=64 {
            offs.push((a.alloc(i * 7 % 200 + 1).unwrap(), i * 7 % 200 + 1));
        }
        let mut spans: Vec<(u64, u64)> = offs
            .iter()
            .map(|&(o, s)| (o, o + AllocHeader::rounded_size(s) as u64))
            .collect();
        spans.sort();
        for w in spans.windows(2) {
            assert!(w[0].1 <= w[1].0, "overlap: {:?} vs {:?}", w[0], w[1]);
        }
    }

    #[test]
    fn free_then_alloc_reuses_block() {
        let mut a = Arena::new(1 << 14);
        let o1 = a.alloc(100).unwrap();
        a.free(o1, 100);
        let o2 = a.alloc(100).unwrap();
        assert_eq!(o1, o2, "LIFO reuse of the same class block");
    }

    #[test]
    fn different_classes_do_not_mix() {
        let mut a = Arena::new(1 << 14);
        let small = a.alloc(16).unwrap();
        a.free(small, 16);
        let big = a.alloc(1024).unwrap();
        assert_ne!(small, big);
    }

    #[test]
    fn large_blocks_roundtrip() {
        let mut a = Arena::new(1 << 16);
        let o1 = a.alloc(10_000).unwrap();
        a.free(o1, 10_000);
        let o2 = a.alloc(9_500).unwrap();
        assert_eq!(o1, o2, "first fit reuses the large block");
        // A much smaller request must not take the big block (waste cap).
        a.free(o2, 10_000);
        let o3 = a.alloc(4200).unwrap();
        assert_ne!(o3, o1);
    }

    #[test]
    fn out_of_memory_is_reported() {
        let mut a = Arena::new(4096);
        let mut n = 0;
        loop {
            match a.alloc(4096) {
                Ok(_) => n += 1,
                Err(NvError::OutOfMemory { .. }) => break,
                Err(e) => panic!("unexpected: {e}"),
            }
            assert!(n < 100);
        }
    }

    #[test]
    fn stats_track_live_allocations() {
        let mut a = Arena::new(1 << 14);
        let o = a.alloc(64).unwrap();
        let s = a.hdr.stats();
        assert_eq!(s.live_allocs, 1);
        assert_eq!(s.live_bytes, 64);
        assert_eq!(s.alloc_calls, 1);
        a.free(o, 64);
        let s = a.hdr.stats();
        assert_eq!(s.live_allocs, 0);
        assert_eq!(s.live_bytes, 0);
        assert_eq!(s.free_calls, 1);
    }

    #[test]
    fn check_accepts_valid_and_rejects_corrupt_lists() {
        let mut a = Arena::new(1 << 14);
        let o = a.alloc(64).unwrap();
        a.free(o, 64);
        let base = a.base();
        unsafe { a.hdr.check(base, 16).unwrap() };
        // Corrupt the free head to point out of bounds.
        a.hdr.free_heads[class_for(64).unwrap()] = (1 << 20) as u64;
        assert!(unsafe { a.hdr.check(base, 16) }.is_err());
    }

    #[test]
    fn check_detects_in_range_free_list_cycle() {
        // A corrupted next-pointer that stays in range and 16-aligned
        // forms a cycle the bounds checks cannot see; Brent's walk must
        // report it (and do so in O(cycle length), not O(region size)).
        let mut a = Arena::new(1 << 14);
        let class = class_for(64).unwrap();
        let o1 = a.alloc(64).unwrap();
        let o2 = a.alloc(64).unwrap();
        let o3 = a.alloc(64).unwrap();
        a.free(o1, 64);
        a.free(o2, 64);
        a.free(o3, 64);
        let base = a.base();
        // List is o3 -> o2 -> o1 -> 0; corrupt o1's link back to o3.
        unsafe { *((base + o1 as usize) as *mut u64) = o3 };
        let err = unsafe { a.hdr.check(base, 16) }.unwrap_err();
        assert!(
            err.to_string().contains("cycle"),
            "expected a cycle report, got: {err}"
        );
        assert_eq!(a.hdr.free_heads[class], o3);
    }

    #[test]
    fn check_detects_large_list_self_cycle() {
        let mut a = Arena::new(1 << 16);
        let o = a.alloc(10_000).unwrap();
        a.free(o, 10_000);
        let base = a.base();
        // Self-loop: the block's next pointer names itself.
        unsafe { *((base + o as usize) as *mut u64) = o };
        let err = unsafe { a.hdr.check(base, 16) }.unwrap_err();
        assert!(err.to_string().contains("large free list cycle"));
    }

    #[test]
    fn carve_aligned_respects_alignment_and_bounds() {
        let mut a = Arena::new(1 << 14);
        let _ = a.alloc(16).unwrap(); // push bump off alignment
        let off = a.hdr.carve_aligned(1024, 1024).unwrap();
        assert_eq!(off % 1024, 0);
        assert!(a.hdr.stats().bump == off + 1024);
        assert!(a.hdr.carve_aligned(1 << 20, 1024).is_err());
    }

    #[test]
    fn zero_size_alloc_panics() {
        let mut a = Arena::new(4096);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| a.alloc(0)));
        assert!(r.is_err());
    }

    #[test]
    fn offsets_survive_memmove_of_the_arena() {
        // Simulates remapping a region at a different address: the arena's
        // bytes (including embedded free-list links) are copied verbatim and
        // the allocator keeps functioning against the new base.
        let mut a = Arena::new(1 << 14);
        let o1 = a.alloc(64).unwrap();
        let o2 = a.alloc(64).unwrap();
        a.free(o1, 64);
        let mut b = Arena::new(1 << 14); // fresh memory at a new address
        b.mem.copy_from_slice(&a.mem);
        b.hdr.bump = a.hdr.bump;
        b.hdr.free_heads = a.hdr.free_heads;
        b.hdr.large_head = a.hdr.large_head;
        let o3 = b.alloc(64).unwrap();
        assert_eq!(o3, o1, "free list link resolved against the new base");
        let o4 = b.alloc(64).unwrap();
        assert!(o4 != o2 && o4 != o3, "fresh bump block");
    }
}
