//! Low-level virtual-memory plumbing.
//!
//! This module is the only place in the crate that talks to the OS about
//! address space. Everything else manipulates addresses handed out here.
//!
//! The simulated NVM needs three capabilities that `std` does not expose:
//!
//! 1. *Reserving* a large contiguous range of virtual addresses without
//!    committing memory (`mmap` with `PROT_NONE` + `MAP_NORESERVE`);
//! 2. *Committing* sub-ranges of the reservation, either anonymous or backed
//!    by a file, at a **fixed** address inside the reservation (`MAP_FIXED`);
//! 3. *Decommitting* sub-ranges back to the reserved state.
//!
//! The fixed-address control is what lets region base addresses stay aligned
//! to the segment size so that `getBase(addr)` is a single mask — the heart
//! of the paper's RIV conversion functions.

use crate::error::{NvError, Result};
use std::fs::File;
use std::io;
use std::os::unix::io::AsRawFd;
use std::ptr;

/// A reserved — but not committed — contiguous range of virtual addresses.
///
/// Dropping the reservation unmaps the whole range, including any committed
/// sub-ranges still inside it.
#[derive(Debug)]
pub struct Reservation {
    base: usize,
    len: usize,
}

// The reservation is plain address space; moving the handle between threads
// is safe. Interior memory is managed by the owners of committed sub-ranges.
unsafe impl Send for Reservation {}
unsafe impl Sync for Reservation {}

impl Reservation {
    /// Reserves `len` bytes of virtual address space.
    ///
    /// The memory is `PROT_NONE`: touching it faults until a sub-range is
    /// committed with [`Reservation::commit_anon`] or
    /// [`Reservation::commit_file`].
    ///
    /// # Errors
    ///
    /// Returns [`NvError::Io`] if the kernel refuses the mapping.
    pub fn new(len: usize) -> Result<Reservation> {
        let addr = unsafe {
            libc::mmap(
                ptr::null_mut(),
                len,
                libc::PROT_NONE,
                libc::MAP_PRIVATE | libc::MAP_ANONYMOUS | libc::MAP_NORESERVE,
                -1,
                0,
            )
        };
        if addr == libc::MAP_FAILED {
            return Err(NvError::Io(io::Error::last_os_error()));
        }
        Ok(Reservation {
            base: addr as usize,
            len,
        })
    }

    /// Base address of the reservation.
    pub fn base(&self) -> usize {
        self.base
    }

    /// Length of the reservation in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the reservation is empty (it never is in practice).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether `[addr, addr+len)` lies fully inside the reservation.
    pub fn contains(&self, addr: usize, len: usize) -> bool {
        addr >= self.base
            && addr
                .checked_add(len)
                .is_some_and(|e| e <= self.base + self.len)
    }

    fn check_range(&self, addr: usize, len: usize) -> Result<()> {
        if !self.contains(addr, len) {
            return Err(NvError::AddressOutOfRange { addr });
        }
        Ok(())
    }

    /// Commits `[addr, addr+len)` as zero-filled read/write anonymous memory.
    ///
    /// # Errors
    ///
    /// [`NvError::AddressOutOfRange`] if the range leaves the reservation,
    /// [`NvError::Io`] on kernel failure.
    pub fn commit_anon(&self, addr: usize, len: usize) -> Result<()> {
        self.check_range(addr, len)?;
        let p = unsafe {
            libc::mmap(
                addr as *mut libc::c_void,
                len,
                libc::PROT_READ | libc::PROT_WRITE,
                libc::MAP_PRIVATE | libc::MAP_ANONYMOUS | libc::MAP_FIXED,
                -1,
                0,
            )
        };
        if p == libc::MAP_FAILED {
            return Err(NvError::Io(io::Error::last_os_error()));
        }
        // Pin page-size behaviour: opportunistic transparent-huge-page
        // grants would make otherwise-identical region instances perform
        // bimodally (a THP-backed instance pays far fewer TLB misses), so
        // benchmarks comparing instances need every region on the same
        // footing. Advisory only; failure is fine.
        unsafe {
            libc::madvise(addr as *mut libc::c_void, len, libc::MADV_NOHUGEPAGE);
        }
        Ok(())
    }

    /// Commits `[addr, addr+len)` backed by `file` starting at `offset`.
    ///
    /// With `shared = true` stores write through to the file (`MAP_SHARED`),
    /// which is how durable regions are simulated; `shared = false` gives a
    /// copy-on-write session (`MAP_PRIVATE`).
    ///
    /// # Errors
    ///
    /// [`NvError::AddressOutOfRange`] if the range leaves the reservation,
    /// [`NvError::Io`] on kernel failure.
    pub fn commit_file(
        &self,
        addr: usize,
        len: usize,
        file: &File,
        offset: u64,
        shared: bool,
    ) -> Result<()> {
        self.check_range(addr, len)?;
        let flags = if shared {
            libc::MAP_SHARED
        } else {
            libc::MAP_PRIVATE
        } | libc::MAP_FIXED;
        let p = unsafe {
            libc::mmap(
                addr as *mut libc::c_void,
                len,
                libc::PROT_READ | libc::PROT_WRITE,
                flags,
                file.as_raw_fd(),
                offset as libc::off_t,
            )
        };
        if p == libc::MAP_FAILED {
            return Err(NvError::Io(io::Error::last_os_error()));
        }
        Ok(())
    }

    /// Returns `[addr, addr+len)` to the reserved (inaccessible) state,
    /// discarding its contents.
    ///
    /// # Errors
    ///
    /// [`NvError::AddressOutOfRange`] if the range leaves the reservation,
    /// [`NvError::Io`] on kernel failure.
    pub fn decommit(&self, addr: usize, len: usize) -> Result<()> {
        self.check_range(addr, len)?;
        let p = unsafe {
            libc::mmap(
                addr as *mut libc::c_void,
                len,
                libc::PROT_NONE,
                libc::MAP_PRIVATE | libc::MAP_ANONYMOUS | libc::MAP_NORESERVE | libc::MAP_FIXED,
                -1,
                0,
            )
        };
        if p == libc::MAP_FAILED {
            return Err(NvError::Io(io::Error::last_os_error()));
        }
        Ok(())
    }

    /// Flushes a file-backed committed range to its backing file.
    ///
    /// This is the substrate's analogue of a persistence barrier to real
    /// NVM: after `sync` returns, the bytes are in the file image.
    ///
    /// # Errors
    ///
    /// [`NvError::AddressOutOfRange`] if the range leaves the reservation,
    /// [`NvError::Io`] on kernel failure.
    pub fn sync(&self, addr: usize, len: usize) -> Result<()> {
        self.check_range(addr, len)?;
        let rc = unsafe { libc::msync(addr as *mut libc::c_void, len, libc::MS_SYNC) };
        if rc != 0 {
            return Err(NvError::Io(io::Error::last_os_error()));
        }
        Ok(())
    }
}

impl Drop for Reservation {
    fn drop(&mut self) {
        // Failure here is unreportable; the address space dies with the
        // process anyway.
        unsafe {
            libc::munmap(self.base as *mut libc::c_void, self.len);
        }
    }
}

/// The system page size in bytes.
pub fn page_size() -> usize {
    // SAFETY: sysconf is always callable; _SC_PAGESIZE is a valid name.
    unsafe { libc::sysconf(libc::_SC_PAGESIZE) as usize }
}

/// Rounds `n` up to the next multiple of `align` (a power of two).
pub fn align_up(n: usize, align: usize) -> usize {
    debug_assert!(align.is_power_of_two());
    (n + align - 1) & !(align - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserve_commit_write_decommit() {
        let r = Reservation::new(1 << 22).unwrap();
        assert!(r.base() != 0);
        assert_eq!(r.len(), 1 << 22);
        let seg = r.base() + (1 << 20);
        r.commit_anon(seg, 1 << 20).unwrap();
        unsafe {
            ptr::write_bytes(seg as *mut u8, 0xAB, 4096);
            assert_eq!(*(seg as *const u8), 0xAB);
        }
        r.decommit(seg, 1 << 20).unwrap();
        // Committing again yields zeroed memory.
        r.commit_anon(seg, 1 << 20).unwrap();
        unsafe {
            assert_eq!(*(seg as *const u8), 0);
        }
    }

    #[test]
    fn contains_checks_bounds() {
        let r = Reservation::new(1 << 20).unwrap();
        assert!(r.contains(r.base(), 1));
        assert!(r.contains(r.base() + (1 << 20) - 1, 1));
        assert!(!r.contains(r.base() + (1 << 20), 1));
        assert!(!r.contains(r.base().wrapping_sub(1), 1));
        assert!(!r.contains(usize::MAX, 2), "overflow must not wrap");
    }

    #[test]
    fn commit_outside_reservation_fails() {
        let r = Reservation::new(1 << 20).unwrap();
        let err = r.commit_anon(r.base() + (1 << 20), 4096).unwrap_err();
        assert!(matches!(err, NvError::AddressOutOfRange { .. }));
    }

    #[test]
    fn file_backed_commit_roundtrips_through_file() {
        use std::io::{Read, Seek, SeekFrom, Write};
        let dir = std::env::temp_dir().join(format!("nvmsim-mem-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("img");
        let mut f = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)
            .unwrap();
        f.set_len(1 << 16).unwrap();
        f.seek(SeekFrom::Start(0)).unwrap();
        f.write_all(b"hello-nvm").unwrap();
        f.sync_all().unwrap();

        let r = Reservation::new(1 << 20).unwrap();
        let addr = r.base();
        r.commit_file(addr, 1 << 16, &f, 0, true).unwrap();
        let got = unsafe { std::slice::from_raw_parts(addr as *const u8, 9) };
        assert_eq!(got, b"hello-nvm");

        // Writes go back to the file through MAP_SHARED + msync.
        unsafe { ptr::copy_nonoverlapping(b"HELLO".as_ptr(), addr as *mut u8, 5) };
        r.sync(addr, 1 << 16).unwrap();
        let mut back = vec![0u8; 9];
        f.seek(SeekFrom::Start(0)).unwrap();
        f.read_exact(&mut back).unwrap();
        assert_eq!(&back, b"HELLO-nvm");
        drop(r);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn align_up_works() {
        assert_eq!(align_up(0, 16), 0);
        assert_eq!(align_up(1, 16), 16);
        assert_eq!(align_up(16, 16), 16);
        assert_eq!(align_up(17, 16), 32);
        assert_eq!(align_up(4095, 4096), 4096);
    }

    #[test]
    fn page_size_is_sane() {
        let p = page_size();
        assert!(p.is_power_of_two());
        assert!(p >= 4096);
    }
}
