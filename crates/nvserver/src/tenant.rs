//! Per-tenant state: one region + object store + persistent hash set
//! per tenant, a degradation-ladder state machine, and per-tenant
//! metrics.
//!
//! A tenant lives entirely inside its shard's worker thread (the
//! persistent structures hold raw mapped pointers and are not `Send`);
//! only the [`TenantSpec`], [`TenantMetrics`], and snapshots cross
//! threads.
//!
//! ## Degradation ladder
//!
//! ```text
//! Closed ──open──▶ Healthy ──evict──▶ Closed (reopen remaps the base)
//!   Healthy ──crash+recover──▶ Recovered
//!   Healthy ──crash+failover──▶ DegradedReadOnly ──heal──▶ Recovered
//!   Healthy ──repl sink dies──▶ DegradedReplLost ──heal──▶ Recovered
//! ```
//!
//! `Recovered` serves exactly like `Healthy` (it exists so operators —
//! and the chaos matrix — can see that a tenant came back from a crash
//! rather than never having faulted). Both `Degraded` states are
//! read-only: writes answer `Degraded` until the tenant heals, either
//! via an explicit `Heal` request or automatically after the configured
//! degraded window of requests.

use crate::codec::Priority;
use crate::fault::{PlannedSink, ServerFaultPlan};
use nvmsim::metrics::{self, Counter};
use nvmsim::repl::{self, Replicator, ReplicatorConfig};
use nvmsim::shadow::FaultPolicy;
use nvmsim::Region;
use pds::{NodeArena, PArt, PHashSet};
use pi_core::{FatPtrCached, OffHolder, Riv};
use pstore::{ObjectStore, StoreHealth};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

/// Root name under which every tenant's hash set is registered.
const SET_ROOT: &str = "srv.set";

/// Root name under which every tenant's suggestion index (ART) is
/// registered.
const IDX_ROOT: &str = "srv.idx";

/// Width of [`index_word`]: 26^14 > 2^64, so every `u64` key has a
/// distinct fixed-width word.
const IDX_WORD_LEN: usize = 14;

/// The ART word a `u64` key is indexed under: fixed-width base-26,
/// most-significant digit first, so numerically close keys share long
/// prefixes (the shape prefix queries exploit).
pub fn index_word(key: u64) -> String {
    let mut buf = [b'a'; IDX_WORD_LEN];
    let mut rem = key;
    for slot in buf.iter_mut().rev() {
        *slot = b'a' + (rem % 26) as u8;
        rem /= 26;
    }
    String::from_utf8(buf.to_vec()).expect("ascii")
}

/// Pointer representation a tenant's persistent set uses. Mixing
/// representations across tenants means one server run exercises every
/// paper format under remap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReprKind {
    /// Off-holder (offset-based) pointers.
    OffHolder,
    /// Region-ID-virtual-address pointers.
    Riv,
    /// Fat pointers with the seqlock-published lookup cache.
    FatCached,
}

impl ReprKind {
    /// Short lowercase name for reports and labels.
    pub fn name(self) -> &'static str {
        match self {
            ReprKind::OffHolder => "offholder",
            ReprKind::Riv => "riv",
            ReprKind::FatCached => "fatcached",
        }
    }
}

/// Static description of one tenant.
#[derive(Debug, Clone)]
pub struct TenantSpec {
    /// Tenant id (routes to shard `id % nshards`).
    pub id: u32,
    /// Pointer representation for the tenant's set.
    pub repr: ReprKind,
    /// Default priority for admission decisions involving this tenant.
    pub priority: Priority,
    /// Whether a replicator ships the tenant's durability points to a
    /// stream (required for failover crashes).
    pub replicate: bool,
    /// Whether shadow cache-line tracking is enabled (required for
    /// crash injection; implied by `replicate`).
    pub shadowed: bool,
    /// Hash set bucket count.
    pub nbuckets: u64,
    /// Region size in bytes.
    pub region_size: usize,
    /// Undo-log capacity in bytes.
    pub log_cap: u64,
}

impl TenantSpec {
    /// A spec with serving defaults: normal priority, 512 KiB region,
    /// 32 KiB log, 64 buckets, no replication, no shadow.
    pub fn new(id: u32, repr: ReprKind) -> TenantSpec {
        TenantSpec {
            id,
            repr,
            priority: Priority::Normal,
            replicate: false,
            shadowed: false,
            nbuckets: 64,
            region_size: 512 << 10,
            log_cap: 32 << 10,
        }
    }

    /// Enables replication (and with it shadow tracking).
    pub fn replicated(mut self) -> TenantSpec {
        self.replicate = true;
        self.shadowed = true;
        self
    }

    /// Enables shadow tracking without replication (crash-injectable,
    /// recover-in-place only).
    pub fn crashable(mut self) -> TenantSpec {
        self.shadowed = true;
        self
    }

    /// Sets the admission priority.
    pub fn with_priority(mut self, p: Priority) -> TenantSpec {
        self.priority = p;
        self
    }
}

/// Where a tenant sits on the degradation ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TenantState {
    /// Not currently open (never opened, or evicted).
    Closed,
    /// Serving normally.
    Healthy,
    /// Serving normally after coming back from a crash image or a heal.
    Recovered,
    /// Read-only: serving a replica promoted after a primary crash.
    DegradedReadOnly,
    /// Read-only: local region fine but replication permanently failed.
    DegradedReplLost,
}

impl TenantState {
    /// Stable numeric code (for the metrics atomic).
    pub fn code(self) -> u32 {
        match self {
            TenantState::Closed => 0,
            TenantState::Healthy => 1,
            TenantState::Recovered => 2,
            TenantState::DegradedReadOnly => 3,
            TenantState::DegradedReplLost => 4,
        }
    }

    /// Decodes [`TenantState::code`].
    pub fn from_code(c: u32) -> Option<TenantState> {
        match c {
            0 => Some(TenantState::Closed),
            1 => Some(TenantState::Healthy),
            2 => Some(TenantState::Recovered),
            3 => Some(TenantState::DegradedReadOnly),
            4 => Some(TenantState::DegradedReplLost),
            _ => None,
        }
    }

    /// Short lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            TenantState::Closed => "closed",
            TenantState::Healthy => "healthy",
            TenantState::Recovered => "recovered",
            TenantState::DegradedReadOnly => "degraded_readonly",
            TenantState::DegradedReplLost => "degraded_repllost",
        }
    }

    /// Whether writes are refused in this state.
    pub fn read_only(self) -> bool {
        matches!(
            self,
            TenantState::DegradedReadOnly | TenantState::DegradedReplLost
        )
    }
}

/// Per-tenant counters, shared between the shard worker (increments)
/// and observers (snapshots). All relaxed: these are statistics, not
/// synchronization.
#[derive(Debug, Default)]
pub struct TenantMetrics {
    /// Requests accepted for this tenant.
    pub requests: AtomicU64,
    /// Requests answered `Ok`.
    pub ok: AtomicU64,
    /// Requests answered `Overloaded` (rejected or shed).
    pub overloaded: AtomicU64,
    /// Requests answered `DeadlineExceeded`.
    pub deadline_exceeded: AtomicU64,
    /// Requests answered `Degraded`.
    pub degraded: AtomicU64,
    /// Requests answered `Failed`.
    pub failed: AtomicU64,
    /// Write attempts retried after transient faults.
    pub retries: AtomicU64,
    /// Times the tenant was evicted (closed by LRU pressure or request).
    pub evictions: AtomicU64,
    /// Reopens that mapped the region at a different base address.
    pub remaps: AtomicU64,
    /// Crash images injected against this tenant.
    pub crashes: AtomicU64,
    /// Primary→replica failovers.
    pub failovers: AtomicU64,
    /// Permanent replication-sink failures observed.
    pub repl_lost: AtomicU64,
    /// Transitions out of a degraded state.
    pub heals: AtomicU64,
    /// `check_invariants` failures (must stay 0).
    pub invariant_failures: AtomicU64,
    /// Current [`TenantState::code`].
    pub state: AtomicU32,
}

/// Plain-value copy of [`TenantMetrics`] at one instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantSnapshot {
    /// Requests accepted.
    pub requests: u64,
    /// `Ok` responses.
    pub ok: u64,
    /// `Overloaded` responses.
    pub overloaded: u64,
    /// `DeadlineExceeded` responses.
    pub deadline_exceeded: u64,
    /// `Degraded` responses.
    pub degraded: u64,
    /// `Failed` responses.
    pub failed: u64,
    /// Retried write attempts.
    pub retries: u64,
    /// Evictions.
    pub evictions: u64,
    /// Remapped reopens.
    pub remaps: u64,
    /// Injected crashes.
    pub crashes: u64,
    /// Failovers.
    pub failovers: u64,
    /// Permanent replication losses.
    pub repl_lost: u64,
    /// Heals.
    pub heals: u64,
    /// Invariant-check failures.
    pub invariant_failures: u64,
    /// State at snapshot time.
    pub state: TenantState,
}

impl TenantMetrics {
    /// Reads every counter (relaxed).
    pub fn snapshot(&self) -> TenantSnapshot {
        TenantSnapshot {
            requests: self.requests.load(Ordering::Relaxed),
            ok: self.ok.load(Ordering::Relaxed),
            overloaded: self.overloaded.load(Ordering::Relaxed),
            deadline_exceeded: self.deadline_exceeded.load(Ordering::Relaxed),
            degraded: self.degraded.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            remaps: self.remaps.load(Ordering::Relaxed),
            crashes: self.crashes.load(Ordering::Relaxed),
            failovers: self.failovers.load(Ordering::Relaxed),
            repl_lost: self.repl_lost.load(Ordering::Relaxed),
            heals: self.heals.load(Ordering::Relaxed),
            invariant_failures: self.invariant_failures.load(Ordering::Relaxed),
            state: TenantState::from_code(self.state.load(Ordering::Relaxed))
                .unwrap_or(TenantState::Closed),
        }
    }
}

/// The tenant's persistent set, dispatching over the pointer
/// representation chosen in its spec.
enum TenantSet {
    Off(PHashSet<OffHolder, 32>),
    Riv(PHashSet<Riv, 32>),
    Fat(PHashSet<FatPtrCached, 32>),
}

impl TenantSet {
    fn create(arena: NodeArena, nbuckets: u64, kind: ReprKind) -> Result<TenantSet, String> {
        Ok(match kind {
            ReprKind::OffHolder => {
                TenantSet::Off(PHashSet::create_rooted(arena, nbuckets, SET_ROOT).map_err(err)?)
            }
            ReprKind::Riv => {
                TenantSet::Riv(PHashSet::create_rooted(arena, nbuckets, SET_ROOT).map_err(err)?)
            }
            ReprKind::FatCached => {
                TenantSet::Fat(PHashSet::create_rooted(arena, nbuckets, SET_ROOT).map_err(err)?)
            }
        })
    }

    fn attach(arena: NodeArena, kind: ReprKind) -> Result<TenantSet, String> {
        Ok(match kind {
            ReprKind::OffHolder => TenantSet::Off(PHashSet::attach(arena, SET_ROOT).map_err(err)?),
            ReprKind::Riv => TenantSet::Riv(PHashSet::attach(arena, SET_ROOT).map_err(err)?),
            ReprKind::FatCached => TenantSet::Fat(PHashSet::attach(arena, SET_ROOT).map_err(err)?),
        })
    }

    fn insert_tx(&mut self, store: &ObjectStore, key: u64) -> Result<bool, String> {
        match self {
            TenantSet::Off(s) => s.insert_tx(store, key).map_err(err),
            TenantSet::Riv(s) => s.insert_tx(store, key).map_err(err),
            TenantSet::Fat(s) => s.insert_tx(store, key).map_err(err),
        }
    }

    fn remove_tx(&mut self, store: &ObjectStore, key: u64) -> Result<bool, String> {
        match self {
            TenantSet::Off(s) => s.remove_tx(store, key).map_err(err),
            TenantSet::Riv(s) => s.remove_tx(store, key).map_err(err),
            TenantSet::Fat(s) => s.remove_tx(store, key).map_err(err),
        }
    }

    fn contains(&self, key: u64) -> bool {
        match self {
            TenantSet::Off(s) => s.contains(key),
            TenantSet::Riv(s) => s.contains(key),
            TenantSet::Fat(s) => s.contains(key),
        }
    }

    fn keys(&self) -> Vec<u64> {
        match self {
            TenantSet::Off(s) => s.keys(),
            TenantSet::Riv(s) => s.keys(),
            TenantSet::Fat(s) => s.keys(),
        }
    }

    fn check_invariants(&self) -> Result<(), String> {
        match self {
            TenantSet::Off(s) => s.check_invariants(),
            TenantSet::Riv(s) => s.check_invariants(),
            TenantSet::Fat(s) => s.check_invariants(),
        }
    }
}

/// The tenant's suggestion index: a persistent ART over the same
/// representation as its set, holding [`index_word`] of every member.
enum TenantIndex {
    Off(PArt<OffHolder>),
    Riv(PArt<Riv>),
    Fat(PArt<FatPtrCached>),
}

impl TenantIndex {
    fn create(arena: NodeArena, kind: ReprKind) -> Result<TenantIndex, String> {
        Ok(match kind {
            ReprKind::OffHolder => {
                TenantIndex::Off(PArt::create_rooted(arena, IDX_ROOT).map_err(err)?)
            }
            ReprKind::Riv => TenantIndex::Riv(PArt::create_rooted(arena, IDX_ROOT).map_err(err)?),
            ReprKind::FatCached => {
                TenantIndex::Fat(PArt::create_rooted(arena, IDX_ROOT).map_err(err)?)
            }
        })
    }

    fn attach(arena: NodeArena, kind: ReprKind) -> Result<TenantIndex, String> {
        Ok(match kind {
            ReprKind::OffHolder => TenantIndex::Off(PArt::attach(arena, IDX_ROOT).map_err(err)?),
            ReprKind::Riv => TenantIndex::Riv(PArt::attach(arena, IDX_ROOT).map_err(err)?),
            ReprKind::FatCached => TenantIndex::Fat(PArt::attach(arena, IDX_ROOT).map_err(err)?),
        })
    }

    fn insert_tx(&mut self, store: &ObjectStore, word: &str) -> Result<(), String> {
        match self {
            TenantIndex::Off(a) => a.insert_tx(store, word).map(|_| ()).map_err(err),
            TenantIndex::Riv(a) => a.insert_tx(store, word).map(|_| ()).map_err(err),
            TenantIndex::Fat(a) => a.insert_tx(store, word).map(|_| ()).map_err(err),
        }
    }

    fn remove_tx(&mut self, store: &ObjectStore, word: &str) -> Result<(), String> {
        match self {
            TenantIndex::Off(a) => a.remove_tx(store, word).map(|_| ()).map_err(err),
            TenantIndex::Riv(a) => a.remove_tx(store, word).map(|_| ()).map_err(err),
            TenantIndex::Fat(a) => a.remove_tx(store, word).map(|_| ()).map_err(err),
        }
    }

    fn contains(&self, word: &str) -> bool {
        match self {
            TenantIndex::Off(a) => a.contains(word),
            TenantIndex::Riv(a) => a.contains(word),
            TenantIndex::Fat(a) => a.contains(word),
        }
    }

    fn prefix_scan(&self, prefix: &str) -> Result<Vec<String>, String> {
        match self {
            TenantIndex::Off(a) => a.prefix_scan(prefix).map_err(err),
            TenantIndex::Riv(a) => a.prefix_scan(prefix).map_err(err),
            TenantIndex::Fat(a) => a.prefix_scan(prefix).map_err(err),
        }
    }

    fn check_invariants(&self) -> Result<(), String> {
        match self {
            TenantIndex::Off(a) => a.check_invariants(),
            TenantIndex::Riv(a) => a.check_invariants(),
            TenantIndex::Fat(a) => a.check_invariants(),
        }
    }
}

fn err(e: impl std::fmt::Display) -> String {
    e.to_string()
}

/// Replicator tuning shared by every tenant of a server (mirrors the
/// server's retry policy onto the shipping path).
#[derive(Debug, Clone)]
pub(crate) struct TenantTuning {
    pub max_retries: u32,
    pub retry_backoff: std::time::Duration,
    pub retry_backoff_max: std::time::Duration,
    pub degraded_window: u64,
}

/// One live tenant, owned by its shard worker thread.
pub(crate) struct Tenant {
    pub spec: TenantSpec,
    pub metrics: Arc<TenantMetrics>,
    path: PathBuf,
    stream: PathBuf,
    region: Option<Region>,
    store: Option<ObjectStore>,
    set: Option<TenantSet>,
    idx: Option<TenantIndex>,
    repl: Option<Replicator>,
    state: TenantState,
    /// Every base the tenant's region was ever mapped at, in order.
    pub bases: Vec<usize>,
    /// LRU tick of the last request touching this tenant.
    pub last_used: u64,
    /// Writes attempted against this tenant (fault-plan ordinal).
    pub writes: u64,
    /// Requests remaining before an automatic heal while degraded.
    degraded_left: u64,
    tuning: TenantTuning,
}

impl Tenant {
    pub(crate) fn new(
        spec: TenantSpec,
        dir: &Path,
        metrics: Arc<TenantMetrics>,
        tuning: TenantTuning,
    ) -> Tenant {
        let path = dir.join(format!("tenant-{}.nvr", spec.id));
        let stream = dir.join(format!("tenant-{}.nvd", spec.id));
        Tenant {
            spec,
            metrics,
            path,
            stream,
            region: None,
            store: None,
            set: None,
            idx: None,
            repl: None,
            state: TenantState::Closed,
            bases: Vec::new(),
            last_used: 0,
            writes: 0,
            degraded_left: 0,
            tuning,
        }
    }

    pub(crate) fn is_open(&self) -> bool {
        self.region.is_some()
    }

    pub(crate) fn state(&self) -> TenantState {
        self.state
    }

    fn set_state(&mut self, s: TenantState) {
        self.state = s;
        self.metrics.state.store(s.code(), Ordering::Relaxed);
    }

    fn repl_config(&self) -> ReplicatorConfig {
        ReplicatorConfig {
            max_retries: self.tuning.max_retries,
            retry_backoff: self.tuning.retry_backoff,
            retry_backoff_max: self.tuning.retry_backoff_max,
            ..ReplicatorConfig::default()
        }
    }

    /// Attaches shadow tracking and (when configured) a fresh
    /// replication stream to the open region.
    fn attach_instrumentation(&mut self, plan: &ServerFaultPlan) -> Result<(), String> {
        let region = self.region.as_ref().expect("open region");
        if self.spec.shadowed {
            region.enable_shadow().map_err(err)?;
        }
        if self.spec.replicate {
            let sink =
                PlannedSink::create(&self.stream, self.spec.id, plan.clone()).map_err(err)?;
            match Replicator::attach_sink(region, Box::new(sink), self.repl_config()) {
                Ok(r) => self.repl = Some(r),
                Err(e) => {
                    // The opening append failed permanently (dead sink):
                    // the tenant serves, but replication is lost.
                    self.metrics.repl_lost.fetch_add(1, Ordering::Relaxed);
                    self.set_state(TenantState::DegradedReplLost);
                    self.degraded_left = self.tuning.degraded_window;
                    return Err(format!("replication attach failed: {e}"));
                }
            }
        }
        Ok(())
    }

    /// Opens the tenant: formats a fresh region on first open, otherwise
    /// reopens the backing file **avoiding the previous base** so every
    /// reopen is a remap. No-op when already open.
    pub(crate) fn ensure_open(&mut self, plan: &ServerFaultPlan) -> Result<(), String> {
        if self.is_open() {
            return Ok(());
        }
        if self.path.exists() {
            self.reopen(plan)
        } else {
            self.format(plan)
        }
    }

    fn format(&mut self, plan: &ServerFaultPlan) -> Result<(), String> {
        let region = Region::create_file(&self.path, self.spec.region_size).map_err(err)?;
        let store = ObjectStore::format_with_log(&region, self.spec.log_cap).map_err(err)?;
        let set = TenantSet::create(
            NodeArena::transactional(store.clone()),
            self.spec.nbuckets,
            self.spec.repr,
        )?;
        let idx = TenantIndex::create(NodeArena::transactional(store.clone()), self.spec.repr)?;
        region.sync().map_err(err)?;
        self.bases.push(region.base());
        self.region = Some(region);
        self.store = Some(store);
        self.set = Some(set);
        self.idx = Some(idx);
        self.set_state(TenantState::Healthy);
        let r = self.attach_instrumentation(plan);
        metrics::incr(Counter::RegionOpens);
        r
    }

    fn reopen(&mut self, plan: &ServerFaultPlan) -> Result<(), String> {
        let avoid = self.bases.last().copied().unwrap_or(0);
        let region = Region::open_file_avoiding(&self.path, avoid).map_err(err)?;
        let store = ObjectStore::attach(&region).map_err(err)?;
        let health = store.health();
        let set = TenantSet::attach(NodeArena::transactional(store.clone()), self.spec.repr)?;
        let idx = TenantIndex::attach(NodeArena::transactional(store.clone()), self.spec.repr)?;
        if let Err(e) = set.check_invariants().and_then(|()| idx.check_invariants()) {
            self.metrics
                .invariant_failures
                .fetch_add(1, Ordering::Relaxed);
            // Leave everything in place for post-mortem inspection.
            self.region = Some(region);
            self.store = Some(store);
            self.set = Some(set);
            self.idx = Some(idx);
            return Err(format!("invariants violated after reopen: {e}"));
        }
        let remapped = region.base() != avoid;
        if remapped {
            self.metrics.remaps.fetch_add(1, Ordering::Relaxed);
            metrics::incr(Counter::SrvRemapReopens);
        }
        let came_from_crash = region.was_dirty() || health != StoreHealth::Clean;
        self.bases.push(region.base());
        self.region = Some(region);
        self.store = Some(store);
        self.set = Some(set);
        self.idx = Some(idx);
        if came_from_crash {
            self.reconcile_index()?;
        }
        // A dirty image (crash teardown) or an actual rollback marks the
        // tenant `Recovered`; a clean eviction reopen stays `Healthy`.
        // `StoreHealth::Damaged` also lands here: the invariant check
        // above passed, so the tenant serves, visibly post-crash.
        self.set_state(if came_from_crash {
            TenantState::Recovered
        } else {
            TenantState::Healthy
        });
        self.attach_instrumentation(plan)
    }

    /// Closes the tenant cleanly (eviction): invariant check, seal the
    /// replication stream, clean region close. The next `ensure_open`
    /// remaps.
    pub(crate) fn evict(&mut self) -> Result<(), String> {
        if !self.is_open() {
            return Ok(());
        }
        if let Err(e) = self.check_invariants() {
            self.metrics
                .invariant_failures
                .fetch_add(1, Ordering::Relaxed);
            return Err(format!("invariants violated at eviction: {e}"));
        }
        self.set = None;
        self.idx = None;
        self.store = None;
        let repl = self.repl.take();
        let region = self.region.take().expect("open region");
        region.close().map_err(err)?;
        if let Some(r) = repl {
            // Clean close already shipped the final delta; a seal error
            // here means the sink died, which the next open re-detects.
            let _ = r.seal();
        }
        self.metrics.evictions.fetch_add(1, Ordering::Relaxed);
        metrics::incr(Counter::SrvEvictions);
        metrics::incr(Counter::RegionCloses);
        self.set_state(TenantState::Closed);
        Ok(())
    }

    /// Injects a crash image under `policy` and recovers in place: the
    /// faulted image is reopened (remapped), undo recovery runs, and
    /// the tenant comes back `Recovered`.
    pub(crate) fn crash_and_recover(
        &mut self,
        policy: FaultPolicy,
        plan: &ServerFaultPlan,
    ) -> Result<(), String> {
        self.crash_image(policy)?;
        self.reopen(plan)
    }

    /// Injects a crash image and fails over: the replication stream is
    /// sealed and a replica promoted **at a different base** becomes the
    /// new primary; the tenant degrades to read-only. Falls back to
    /// in-place recovery (`DegradedReplLost`) when the stream cannot be
    /// sealed (dead sink).
    pub(crate) fn crash_and_failover(
        &mut self,
        policy: FaultPolicy,
        plan: &ServerFaultPlan,
    ) -> Result<(), String> {
        if !self.spec.replicate {
            return Err("failover crash on a non-replicated tenant".to_string());
        }
        let old_base = self.bases.last().copied().unwrap_or(0);
        let repl = self.crash_image(policy)?;
        let sealed = match repl {
            Some(r) => r.seal().is_ok(),
            None => false,
        };
        if !sealed {
            // No sealed stream to promote from: recover the crashed
            // primary image instead and mark replication lost.
            self.metrics.repl_lost.fetch_add(1, Ordering::Relaxed);
            self.reopen_without_repl(plan)?;
            self.set_state(TenantState::DegradedReplLost);
            self.degraded_left = self.tuning.degraded_window;
            return Ok(());
        }
        // Promote the replica over the tenant's backing file so future
        // reopens keep using the single canonical path.
        let region = repl::promote_avoiding(&self.stream, &self.path, old_base).map_err(err)?;
        let store = ObjectStore::attach(&region).map_err(err)?;
        let set = TenantSet::attach(NodeArena::transactional(store.clone()), self.spec.repr)?;
        let idx = TenantIndex::attach(NodeArena::transactional(store.clone()), self.spec.repr)?;
        if let Err(e) = set.check_invariants().and_then(|()| idx.check_invariants()) {
            self.metrics
                .invariant_failures
                .fetch_add(1, Ordering::Relaxed);
            return Err(format!("invariants violated after failover: {e}"));
        }
        assert_ne!(region.base(), old_base, "promotion must remap");
        self.metrics.remaps.fetch_add(1, Ordering::Relaxed);
        self.metrics.failovers.fetch_add(1, Ordering::Relaxed);
        metrics::incr(Counter::SrvRemapReopens);
        metrics::incr(Counter::SrvFailovers);
        self.bases.push(region.base());
        self.region = Some(region);
        self.store = Some(store);
        self.set = Some(set);
        self.idx = Some(idx);
        self.reconcile_index()?;
        self.set_state(TenantState::DegradedReadOnly);
        self.degraded_left = self.tuning.degraded_window;
        Ok(())
    }

    /// Tears down to a fault-injected crash image on disk. Returns the
    /// detached replicator (if any) so the caller decides whether to
    /// seal it.
    fn crash_image(&mut self, policy: FaultPolicy) -> Result<Option<Replicator>, String> {
        if !self.spec.shadowed {
            return Err("crash injection on an unshadowed tenant".to_string());
        }
        self.set = None;
        self.idx = None;
        self.store = None;
        let repl = self.repl.take();
        let region = self.region.take().expect("open region");
        region.crash_with_faults(policy).map_err(err)?;
        self.metrics.crashes.fetch_add(1, Ordering::Relaxed);
        self.set_state(TenantState::Closed);
        Ok(repl)
    }

    /// Reopens after a crash without re-attaching replication (used on
    /// the replication-lost path so a dead sink is not immediately
    /// re-probed).
    fn reopen_without_repl(&mut self, plan: &ServerFaultPlan) -> Result<(), String> {
        let replicate = self.spec.replicate;
        self.spec.replicate = false;
        let r = self.reopen(plan);
        self.spec.replicate = replicate;
        r
    }

    /// One step of the degraded window; returns `true` if the tenant
    /// should auto-heal now.
    pub(crate) fn tick_degraded(&mut self) -> bool {
        if !self.state.read_only() {
            return false;
        }
        self.degraded_left = self.degraded_left.saturating_sub(1);
        self.degraded_left == 0
    }

    /// Heals a degraded tenant: re-attaches replication when it was
    /// lost (and the sink revived), then returns to `Recovered`.
    pub(crate) fn heal(&mut self, plan: &ServerFaultPlan) -> Result<(), String> {
        match self.state {
            TenantState::DegradedReadOnly => {}
            TenantState::DegradedReplLost => {
                if self.spec.replicate && self.repl.is_none() {
                    self.attach_instrumentation(plan)?;
                }
            }
            _ => return Ok(()),
        }
        self.metrics.heals.fetch_add(1, Ordering::Relaxed);
        self.set_state(TenantState::Recovered);
        Ok(())
    }

    /// Detects a permanent replication-sink failure after a write and
    /// degrades the tenant. Returns `true` when degradation happened.
    pub(crate) fn check_repl_health(&mut self) -> bool {
        let failed = self.repl.as_ref().is_some_and(|r| r.failure().is_some());
        if failed {
            // Dropping the dead replicator is prompt even mid-backoff
            // (its retry wait observes the abort flag).
            self.repl = None;
            self.metrics.repl_lost.fetch_add(1, Ordering::Relaxed);
            self.set_state(TenantState::DegradedReplLost);
            self.degraded_left = self.tuning.degraded_window;
        }
        failed
    }

    /// Membership probe.
    pub(crate) fn contains(&self, key: u64) -> bool {
        self.set.as_ref().expect("open tenant").contains(key)
    }

    /// All keys (snapshot; used by reports and tests).
    pub(crate) fn keys(&self) -> Vec<u64> {
        self.set.as_ref().expect("open tenant").keys()
    }

    /// Transactional insert; `Ok(applied)` once committed. An applied
    /// insert also indexes the key's [`index_word`] in the tenant's ART
    /// (its own transaction; [`Tenant::reconcile_index`] repairs the
    /// between-transactions crash window on recovery).
    pub(crate) fn insert(&mut self, key: u64) -> Result<bool, String> {
        let store = self.store.clone().expect("open tenant");
        let applied = self
            .set
            .as_mut()
            .expect("open tenant")
            .insert_tx(&store, key)?;
        if applied {
            self.idx
                .as_mut()
                .expect("open tenant")
                .insert_tx(&store, &index_word(key))?;
        }
        Ok(applied)
    }

    /// Transactional remove; `Ok(applied)` once committed. An applied
    /// remove also unindexes the key's [`index_word`].
    pub(crate) fn remove(&mut self, key: u64) -> Result<bool, String> {
        let store = self.store.clone().expect("open tenant");
        let applied = self
            .set
            .as_mut()
            .expect("open tenant")
            .remove_tx(&store, key)?;
        if applied {
            self.idx
                .as_mut()
                .expect("open tenant")
                .remove_tx(&store, &index_word(key))?;
        }
        Ok(applied)
    }

    /// Suggestion lookup: every indexed word starting with `prefix`,
    /// sorted.
    pub(crate) fn prefix_scan(&self, prefix: &str) -> Result<Vec<String>, String> {
        self.idx.as_ref().expect("open tenant").prefix_scan(prefix)
    }

    /// Re-derives the suggestion index from the authoritative set after
    /// a crash: the set and index commit in separate transactions, so a
    /// crash between them leaves exactly one word missing or stale.
    fn reconcile_index(&mut self) -> Result<(), String> {
        let store = self.store.clone().expect("open tenant");
        let keys = self.set.as_ref().expect("open tenant").keys();
        let idx = self.idx.as_mut().expect("open tenant");
        let want: std::collections::BTreeSet<String> =
            keys.iter().map(|&k| index_word(k)).collect();
        for word in idx.prefix_scan("")? {
            if !want.contains(&word) {
                idx.remove_tx(&store, &word)?;
            }
        }
        for word in &want {
            if !idx.contains(word) {
                idx.insert_tx(&store, word)?;
            }
        }
        Ok(())
    }

    /// Structure invariants of the live set and suggestion index.
    pub(crate) fn check_invariants(&self) -> Result<(), String> {
        if let Some(s) = &self.set {
            s.check_invariants()?;
        }
        match &self.idx {
            Some(i) => i.check_invariants(),
            None => Ok(()),
        }
    }

    /// Final teardown at server shutdown: like eviction but keeps the
    /// terminal state for the report.
    pub(crate) fn shutdown(&mut self) -> Result<(), String> {
        let prior = self.state;
        self.evict()?;
        // Preserve the ladder position in the report (evict set Closed).
        self.metrics.state.store(prior.code(), Ordering::Relaxed);
        self.state = prior;
        Ok(())
    }
}
