//! # nvserver — fault-tolerant multi-tenant region server
//!
//! A sharded, thread-per-shard front end that serves get/put/delete and
//! batched transactional requests against many [`nvmsim::Region`]
//! tenants. Requests and responses travel through a versioned CRC-framed
//! codec ([`codec`], magic `NVPISRV1` — the serving sibling of `repl`'s
//! `NVPIRPL1` stream format) over an in-process [`Transport`] (loopback
//! now, a socket later).
//!
//! Robustness is the headline, not throughput:
//!
//! - **Admission control** — per-shard bounded queues; past the
//!   high-water mark the shard sheds the lowest-priority queued request
//!   below the arrival (answering it `Overloaded`) or rejects the
//!   arrival itself.
//! - **Deadlines** — every request carries one (or inherits the server
//!   default) and expires to a terminal `DeadlineExceeded` rather than
//!   waiting forever behind a stalled shard.
//! - **Retries** — transient tenant faults retry with the same capped
//!   exponential backoff policy as the replicator
//!   ([`nvmsim::repl::capped_backoff`]).
//! - **Eviction & remap** — hot/cold LRU eviction closes a tenant's
//!   region and later reopens it **at a different base address**
//!   ([`nvmsim::Region::open_file_avoiding`]): every eviction is a live
//!   position-independence exercise for the paper's pointer formats.
//! - **Degradation ladder** — a tenant is `Healthy`, `Recovered` (came
//!   back from a crash image), or `Degraded` (read-only after a
//!   primary→replica failover via [`nvmsim::repl::promote_avoiding`], or
//!   replication lost after a permanent sink failure), and heals back to
//!   `Recovered` after a configurable window. Writes against a degraded
//!   tenant answer `Degraded`; reads keep serving.
//!
//! A [`ServerFaultPlan`] (modeled on `nvmsim`'s `FaultPlan`) injects
//! shard stalls, tenant crash images mid-request, transient write
//! faults, and permanently failing replication sinks; the
//! `server_matrix` integration test sweeps tenants × faults × seeds and
//! asserts that every request gets a terminal response, acked commits
//! survive crash+reopen and failover, and eviction never violates
//! structure invariants.

#![warn(missing_docs)]

pub mod codec;
pub mod fault;
pub mod server;
pub mod tenant;

pub use codec::{
    BatchOp, BatchResult, CodecError, Priority, ReqOp, Request, Response, Status, CODEC_VERSION,
    FRAME_MAGIC, MAX_PREFIX,
};
pub use fault::{ServerFaultPlan, ShardStall, TenantCrash, TransientFault};
pub use server::{
    Client, Server, ServerConfig, ServerHandle, ServerReport, TenantReport, Transport,
};
pub use tenant::{index_word, ReprKind, TenantMetrics, TenantSnapshot, TenantSpec, TenantState};
