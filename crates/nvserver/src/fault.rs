//! Server-level fault injection, modeled on `nvmsim`'s `FaultPlan`.
//!
//! A [`ServerFaultPlan`] is armed by the test harness before (or during)
//! a run and consulted by shard workers at well-defined points:
//!
//! - **Shard stalls** — the worker sleeps before executing its N-th
//!   dequeue, expiring queued deadlines behind it.
//! - **Tenant crashes** — the N-th write against a tenant first turns
//!   the tenant's region into a fault-injected crash image
//!   ([`nvmsim::Region::crash_with_faults`]), then either recovers it in
//!   place (reopened **at a different base**) or fails over to a replica
//!   promoted from the tenant's replication stream.
//! - **Transient write faults** — the write path reports a retryable
//!   failure a bounded number of times, exercising the capped-backoff
//!   retry ladder.
//! - **Dead replication sinks** — the tenant's [`ReplSink`] starts
//!   failing permanently, pushing the tenant down the degradation
//!   ladder until the sink is revived and the tenant healed.
//!
//! All injections are one-shot (or counted) and consumed atomically, so
//! a plan drives a deterministic scenario even with several shard
//! workers consulting it concurrently.

use nvmsim::repl::ReplSink;
use nvmsim::shadow::FaultPolicy;
use std::collections::HashSet;
use std::io::Write;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// One-shot shard stall: before executing its `at_dequeue`-th dequeue
/// (1-based), the shard worker sleeps for `stall`.
#[derive(Debug, Clone, Copy)]
pub struct ShardStall {
    /// Shard index the stall applies to.
    pub shard: usize,
    /// Dequeue ordinal (1-based) that triggers the stall.
    pub at_dequeue: u64,
    /// How long the worker sleeps.
    pub stall: Duration,
}

/// One-shot tenant crash: the `at_write`-th write (1-based, counted per
/// tenant across retries) crashes the tenant's region under `policy`
/// before the write commits — the triggering write is never acked
/// out of a crash it did not survive.
#[derive(Debug, Clone, Copy)]
pub struct TenantCrash {
    /// Tenant the crash applies to.
    pub tenant: u32,
    /// Write ordinal (1-based) that triggers the crash.
    pub at_write: u64,
    /// Fault policy for the crash image (drop/tear/rot unflushed lines).
    pub policy: FaultPolicy,
    /// `false`: recover the crash image in place (reopen remapped).
    /// `true`: fail over to a replica promoted from the replication
    /// stream; the tenant comes back `Degraded` (read-only).
    pub failover: bool,
}

/// Counted transient write fault: starting at the `at_write`-th write
/// (1-based), the next `failures` write attempts against the tenant
/// report a retryable failure.
#[derive(Debug, Clone, Copy)]
pub struct TransientFault {
    /// Tenant the fault applies to.
    pub tenant: u32,
    /// First write ordinal (1-based) affected.
    pub at_write: u64,
    /// How many attempts fail before the fault clears.
    pub failures: u32,
}

#[derive(Debug, Default)]
struct PlanState {
    stalls: Vec<ShardStall>,
    crashes: Vec<TenantCrash>,
    transients: Vec<TransientFault>,
    dead_sinks: HashSet<u32>,
}

/// Shared, thread-safe fault schedule for one server run. Cheap to
/// clone; all clones see the same state.
#[derive(Debug, Clone, Default)]
pub struct ServerFaultPlan {
    inner: Arc<Mutex<PlanState>>,
}

impl ServerFaultPlan {
    /// An empty plan (no faults).
    pub fn none() -> ServerFaultPlan {
        ServerFaultPlan::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, PlanState> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Arms a one-shot shard stall.
    pub fn stall_shard(&self, shard: usize, at_dequeue: u64, stall: Duration) {
        self.lock().stalls.push(ShardStall {
            shard,
            at_dequeue,
            stall,
        });
    }

    /// Arms a one-shot tenant crash (see [`TenantCrash`]).
    pub fn crash_tenant(&self, tenant: u32, at_write: u64, policy: FaultPolicy, failover: bool) {
        self.lock().crashes.push(TenantCrash {
            tenant,
            at_write,
            policy,
            failover,
        });
    }

    /// Arms a counted transient write fault (see [`TransientFault`]).
    pub fn transient(&self, tenant: u32, at_write: u64, failures: u32) {
        self.lock().transients.push(TransientFault {
            tenant,
            at_write,
            failures,
        });
    }

    /// Marks the tenant's replication sink permanently failed: every
    /// subsequent append errors until [`ServerFaultPlan::revive_sink`].
    pub fn kill_sink(&self, tenant: u32) {
        self.lock().dead_sinks.insert(tenant);
    }

    /// Clears a sink kill so a heal can re-attach replication.
    pub fn revive_sink(&self, tenant: u32) {
        self.lock().dead_sinks.remove(&tenant);
    }

    // -- worker-side consults -------------------------------------------------

    /// Consumes and returns the stall armed for this shard at (or
    /// before) the `nth` dequeue, if any.
    pub fn take_stall(&self, shard: usize, nth: u64) -> Option<Duration> {
        let mut st = self.lock();
        let idx = st
            .stalls
            .iter()
            .position(|s| s.shard == shard && nth >= s.at_dequeue)?;
        Some(st.stalls.swap_remove(idx).stall)
    }

    /// Consumes and returns the crash armed for this tenant at (or
    /// before) its `write_nth` write, if any.
    pub fn take_crash(&self, tenant: u32, write_nth: u64) -> Option<TenantCrash> {
        let mut st = self.lock();
        let idx = st
            .crashes
            .iter()
            .position(|c| c.tenant == tenant && write_nth >= c.at_write)?;
        Some(st.crashes.swap_remove(idx))
    }

    /// Consumes one transient-failure token for this tenant's
    /// `write_nth` write. Returns `true` if the attempt must fail.
    pub fn take_transient_failure(&self, tenant: u32, write_nth: u64) -> bool {
        let mut st = self.lock();
        let Some(idx) = st
            .transients
            .iter()
            .position(|t| t.tenant == tenant && write_nth >= t.at_write && t.failures > 0)
        else {
            return false;
        };
        st.transients[idx].failures -= 1;
        if st.transients[idx].failures == 0 {
            st.transients.swap_remove(idx);
        }
        true
    }

    /// Whether the tenant's replication sink is currently dead.
    pub fn sink_dead(&self, tenant: u32) -> bool {
        self.lock().dead_sinks.contains(&tenant)
    }
}

/// File-backed replication sink that consults the fault plan on every
/// append: once the tenant's sink is killed, appends fail permanently
/// (until revived), driving the replicator's retry ladder and then the
/// tenant's `Degraded` transition.
#[derive(Debug)]
pub(crate) struct PlannedSink {
    file: std::fs::File,
    tenant: u32,
    plan: ServerFaultPlan,
}

impl PlannedSink {
    /// Creates (truncating) the stream file at `path`.
    pub(crate) fn create(
        path: &std::path::Path,
        tenant: u32,
        plan: ServerFaultPlan,
    ) -> std::io::Result<PlannedSink> {
        Ok(PlannedSink {
            file: std::fs::File::create(path)?,
            tenant,
            plan,
        })
    }
}

impl ReplSink for PlannedSink {
    fn append(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        if self.plan.sink_dead(self.tenant) {
            return Err(std::io::Error::other("sink killed by fault plan"));
        }
        self.file.write_all(bytes)?;
        self.file.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn injections_are_one_shot() {
        let plan = ServerFaultPlan::none();
        plan.stall_shard(1, 3, Duration::from_millis(5));
        assert!(plan.take_stall(0, 10).is_none(), "wrong shard");
        assert!(plan.take_stall(1, 2).is_none(), "too early");
        assert_eq!(plan.take_stall(1, 3), Some(Duration::from_millis(5)));
        assert!(plan.take_stall(1, 4).is_none(), "consumed");

        plan.crash_tenant(7, 2, FaultPolicy::DropUnflushed, true);
        assert!(plan.take_crash(7, 1).is_none());
        let c = plan.take_crash(7, 2).unwrap();
        assert!(c.failover);
        assert!(plan.take_crash(7, 3).is_none(), "consumed");
    }

    #[test]
    fn transient_tokens_count_down() {
        let plan = ServerFaultPlan::none();
        plan.transient(3, 2, 2);
        assert!(!plan.take_transient_failure(3, 1));
        assert!(plan.take_transient_failure(3, 2));
        assert!(plan.take_transient_failure(3, 3));
        assert!(!plan.take_transient_failure(3, 4), "tokens exhausted");
    }

    #[test]
    fn sink_kill_and_revive() {
        let plan = ServerFaultPlan::none();
        assert!(!plan.sink_dead(5));
        plan.kill_sink(5);
        assert!(plan.sink_dead(5));
        plan.revive_sink(5);
        assert!(!plan.sink_dead(5));
    }
}
