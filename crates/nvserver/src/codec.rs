//! Versioned CRC-framed request/response codec.
//!
//! Every frame is `magic | version | kind | payload_len | crc64 |
//! payload`, little-endian, with the CRC-64/XZ taken over the pre-CRC
//! header words plus the payload — the same sealing discipline as the
//! `NVPIRPL1` replication stream, so a torn or bit-rotted frame is a
//! typed [`CodecError`], never garbage handed to the server. The codec
//! is deliberately dependency-free and byte-oriented (no alignment
//! assumptions) so the same bytes can later travel a socket unchanged.

use nvmsim::crc::crc64;

/// Frame magic: `NVPISRV1`.
pub const FRAME_MAGIC: u64 = u64::from_le_bytes(*b"NVPISRV1");
/// Codec version encoded in every frame. Version 2 added the
/// variable-length [`ReqOp::PrefixQuery`] opcode; v1 frames (which
/// cannot carry it) are rejected with [`CodecError::BadVersion`].
pub const CODEC_VERSION: u32 = 2;

/// Longest prefix a [`ReqOp::PrefixQuery`] may carry — the ART's
/// `pds::MAX_KEY`, since no longer prefix can match any indexed key.
pub const MAX_PREFIX: usize = 64;

const KIND_REQUEST: u32 = 1;
const KIND_RESPONSE: u32 = 2;
/// magic + version + kind + payload_len + crc64.
const HEADER_BYTES: usize = 8 + 4 + 4 + 8 + 8;

/// Request priority; admission control sheds strictly lower priorities
/// first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priority {
    /// Shed first.
    Low,
    /// The default.
    Normal,
    /// Shed last.
    High,
}

impl Priority {
    fn code(self) -> u8 {
        match self {
            Priority::Low => 0,
            Priority::Normal => 1,
            Priority::High => 2,
        }
    }

    fn from_code(c: u8) -> Option<Priority> {
        match c {
            0 => Some(Priority::Low),
            1 => Some(Priority::Normal),
            2 => Some(Priority::High),
            _ => None,
        }
    }
}

/// One entry of a batched (transactional) request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchOp {
    /// `true` = insert the key, `false` = remove it.
    pub put: bool,
    /// The key operated on.
    pub key: u64,
}

/// The operation a request asks for.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReqOp {
    /// Membership probe.
    Get {
        /// The key probed.
        key: u64,
    },
    /// Transactional insert.
    Put {
        /// The key inserted.
        key: u64,
    },
    /// Transactional remove.
    Delete {
        /// The key removed.
        key: u64,
    },
    /// A sequence of writes applied in order, each its own transaction.
    Batch {
        /// The writes, applied front to back.
        ops: Vec<BatchOp>,
    },
    /// Force-evict the tenant (close its region cleanly; the next
    /// request reopens it remapped at a different base).
    Evict,
    /// Force a degraded tenant to heal now instead of waiting out the
    /// degraded window.
    Heal,
    /// Suggestion lookup: all indexed keys starting with `prefix`,
    /// served from the tenant's persistent ART (codec v2+).
    PrefixQuery {
        /// Lowercase ASCII prefix, at most [`MAX_PREFIX`] bytes; empty
        /// scans the whole index (the server caps the reply).
        prefix: String,
    },
}

impl ReqOp {
    fn code(&self) -> u8 {
        match self {
            ReqOp::Get { .. } => 0,
            ReqOp::Put { .. } => 1,
            ReqOp::Delete { .. } => 2,
            ReqOp::Batch { .. } => 3,
            ReqOp::Evict => 4,
            ReqOp::Heal => 5,
            ReqOp::PrefixQuery { .. } => 6,
        }
    }
}

/// One request frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Caller-chosen correlation id, echoed in the response.
    pub id: u64,
    /// Target tenant.
    pub tenant: u32,
    /// Admission priority.
    pub priority: Priority,
    /// Per-request deadline in microseconds from submission; 0 inherits
    /// the server default.
    pub deadline_micros: u64,
    /// The operation.
    pub op: ReqOp,
}

/// Terminal disposition of a request. Every accepted request receives
/// exactly one of these — nothing is silently dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// Executed.
    Ok,
    /// Shed by admission control; never executed.
    Overloaded,
    /// The deadline passed before execution finished; not applied.
    DeadlineExceeded,
    /// The tenant is degraded (read-only); the write was not applied.
    Degraded,
    /// The tenant id is not configured on this server.
    NoSuchTenant,
    /// The server is shutting down; not executed.
    Shutdown,
    /// Execution failed (retries exhausted or an internal error);
    /// `detail` says why.
    Failed,
    /// The frame failed to decode; `detail` carries the codec error.
    Malformed,
}

impl Status {
    fn code(self) -> u8 {
        match self {
            Status::Ok => 0,
            Status::Overloaded => 1,
            Status::DeadlineExceeded => 2,
            Status::Degraded => 3,
            Status::NoSuchTenant => 4,
            Status::Shutdown => 5,
            Status::Failed => 6,
            Status::Malformed => 7,
        }
    }

    fn from_code(c: u8) -> Option<Status> {
        match c {
            0 => Some(Status::Ok),
            1 => Some(Status::Overloaded),
            2 => Some(Status::DeadlineExceeded),
            3 => Some(Status::Degraded),
            4 => Some(Status::NoSuchTenant),
            5 => Some(Status::Shutdown),
            6 => Some(Status::Failed),
            7 => Some(Status::Malformed),
            _ => None,
        }
    }

    /// Short lowercase name for logs and failure messages.
    pub fn name(self) -> &'static str {
        match self {
            Status::Ok => "ok",
            Status::Overloaded => "overloaded",
            Status::DeadlineExceeded => "deadline_exceeded",
            Status::Degraded => "degraded",
            Status::NoSuchTenant => "no_such_tenant",
            Status::Shutdown => "shutdown",
            Status::Failed => "failed",
            Status::Malformed => "malformed",
        }
    }
}

/// Result of one [`BatchOp`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchResult {
    /// Whether the write changed the set (insert of an absent key,
    /// remove of a present one).
    pub applied: bool,
    /// Linearization stamp drawn after the entry's commit.
    pub stamp: u64,
}

/// One response frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Correlation id echoed from the request.
    pub id: u64,
    /// Terminal disposition.
    pub status: Status,
    /// Get: membership. Put/Delete: whether the write changed the set.
    /// `None` for ops without a boolean result or non-`Ok` statuses.
    pub found: Option<bool>,
    /// Execution attempts (1 + retries); 0 when never executed.
    pub attempts: u32,
    /// Linearization stamp drawn after a committed write (`dlin`
    /// discipline); 0 for reads and unexecuted requests.
    pub stamp: u64,
    /// Per-entry results for `Batch` requests.
    pub batch: Vec<BatchResult>,
    /// Human-readable context for non-`Ok` statuses (and degradation
    /// notes on reads).
    pub detail: String,
}

impl Response {
    /// A response with `status` and `detail` and nothing else — the
    /// shape of every rejection.
    pub fn rejection(id: u64, status: Status, detail: impl Into<String>) -> Response {
        Response {
            id,
            status,
            found: None,
            attempts: 0,
            stamp: 0,
            batch: Vec::new(),
            detail: detail.into(),
        }
    }
}

/// Decode failure. Every malformed frame is one of these — the codec
/// never panics and never returns partial values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer ends before the frame does.
    Truncated,
    /// The first eight bytes are not `NVPISRV1`.
    BadMagic,
    /// Unsupported codec version.
    BadVersion(u32),
    /// The frame kind is not request/response (or not the expected one).
    BadKind(u32),
    /// The CRC-64 over header+payload does not match.
    BadCrc,
    /// A payload field failed validation (named).
    BadField(&'static str),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "frame truncated"),
            CodecError::BadMagic => write!(f, "bad frame magic"),
            CodecError::BadVersion(v) => write!(f, "unsupported codec version {v}"),
            CodecError::BadKind(k) => write!(f, "unexpected frame kind {k}"),
            CodecError::BadCrc => write!(f, "frame CRC mismatch"),
            CodecError::BadField(name) => write!(f, "bad frame field: {name}"),
        }
    }
}

impl std::error::Error for CodecError {}

// -- byte cursor --------------------------------------------------------------

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Cursor<'a> {
        Cursor { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        let end = self.pos.checked_add(n).ok_or(CodecError::Truncated)?;
        if end > self.buf.len() {
            return Err(CodecError::Truncated);
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, CodecError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn done(&self) -> Result<(), CodecError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(CodecError::BadField("trailing bytes"))
        }
    }
}

// -- framing ------------------------------------------------------------------

fn frame(kind: u32, payload: &[u8]) -> Vec<u8> {
    let mut pre = Vec::with_capacity(HEADER_BYTES + payload.len());
    pre.extend_from_slice(&FRAME_MAGIC.to_le_bytes());
    pre.extend_from_slice(&CODEC_VERSION.to_le_bytes());
    pre.extend_from_slice(&kind.to_le_bytes());
    pre.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    let mut crc_input = pre.clone();
    crc_input.extend_from_slice(payload);
    pre.extend_from_slice(&crc64(&crc_input).to_le_bytes());
    pre.extend_from_slice(payload);
    pre
}

fn deframe(buf: &[u8], want_kind: u32) -> Result<&[u8], CodecError> {
    let mut c = Cursor::new(buf);
    if c.u64()? != FRAME_MAGIC {
        return Err(CodecError::BadMagic);
    }
    let version = c.u32()?;
    if version != CODEC_VERSION {
        return Err(CodecError::BadVersion(version));
    }
    let kind = c.u32()?;
    if kind != want_kind {
        return Err(CodecError::BadKind(kind));
    }
    let payload_len = c.u64()? as usize;
    let stored_crc = c.u64()?;
    let payload = c.take(payload_len)?;
    c.done()?;
    // CRC over everything before the CRC word, plus the payload.
    let mut crc_input = buf[..HEADER_BYTES - 8].to_vec();
    crc_input.extend_from_slice(payload);
    if crc64(&crc_input) != stored_crc {
        return Err(CodecError::BadCrc);
    }
    Ok(payload)
}

// -- request ------------------------------------------------------------------

/// Encodes a request into one frame.
pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut p = Vec::with_capacity(48);
    p.extend_from_slice(&req.id.to_le_bytes());
    p.extend_from_slice(&req.tenant.to_le_bytes());
    p.push(req.priority.code());
    p.push(req.op.code());
    p.extend_from_slice(&0u16.to_le_bytes());
    p.extend_from_slice(&req.deadline_micros.to_le_bytes());
    let key = match &req.op {
        ReqOp::Get { key } | ReqOp::Put { key } | ReqOp::Delete { key } => *key,
        _ => 0,
    };
    p.extend_from_slice(&key.to_le_bytes());
    let empty = Vec::new();
    let ops = match &req.op {
        ReqOp::Batch { ops } => ops,
        _ => &empty,
    };
    p.extend_from_slice(&(ops.len() as u32).to_le_bytes());
    for op in ops {
        p.push(u8::from(op.put));
        p.extend_from_slice(&op.key.to_le_bytes());
    }
    if let ReqOp::PrefixQuery { prefix } = &req.op {
        p.extend_from_slice(&(prefix.len() as u16).to_le_bytes());
        p.extend_from_slice(prefix.as_bytes());
    }
    frame(KIND_REQUEST, &p)
}

/// Decodes a request frame.
///
/// # Errors
///
/// [`CodecError`] on any framing or field problem.
pub fn decode_request(buf: &[u8]) -> Result<Request, CodecError> {
    let payload = deframe(buf, KIND_REQUEST)?;
    let mut c = Cursor::new(payload);
    let id = c.u64()?;
    let tenant = c.u32()?;
    let priority = Priority::from_code(c.u8()?).ok_or(CodecError::BadField("priority"))?;
    let op_code = c.u8()?;
    if c.u16()? != 0 {
        return Err(CodecError::BadField("request padding"));
    }
    let deadline_micros = c.u64()?;
    let key = c.u64()?;
    let nbatch = c.u32()? as usize;
    let op = match op_code {
        0 => ReqOp::Get { key },
        1 => ReqOp::Put { key },
        2 => ReqOp::Delete { key },
        3 => {
            let mut ops = Vec::with_capacity(nbatch.min(1024));
            for _ in 0..nbatch {
                let put = match c.u8()? {
                    0 => false,
                    1 => true,
                    _ => return Err(CodecError::BadField("batch op kind")),
                };
                let key = c.u64()?;
                ops.push(BatchOp { put, key });
            }
            ReqOp::Batch { ops }
        }
        4 => ReqOp::Evict,
        5 => ReqOp::Heal,
        6 => {
            let plen = c.u16()? as usize;
            if plen > MAX_PREFIX {
                return Err(CodecError::BadField("prefix length"));
            }
            let prefix = String::from_utf8(c.take(plen)?.to_vec())
                .map_err(|_| CodecError::BadField("prefix utf-8"))?;
            ReqOp::PrefixQuery { prefix }
        }
        _ => return Err(CodecError::BadField("op code")),
    };
    if !matches!(op, ReqOp::Batch { .. }) && nbatch != 0 {
        return Err(CodecError::BadField("batch count on non-batch op"));
    }
    c.done()?;
    Ok(Request {
        id,
        tenant,
        priority,
        deadline_micros,
        op,
    })
}

// -- response -----------------------------------------------------------------

/// Encodes a response into one frame.
pub fn encode_response(resp: &Response) -> Vec<u8> {
    let mut p = Vec::with_capacity(48 + resp.detail.len());
    p.extend_from_slice(&resp.id.to_le_bytes());
    p.push(resp.status.code());
    p.push(match resp.found {
        None => 0,
        Some(false) => 1,
        Some(true) => 2,
    });
    p.extend_from_slice(&0u16.to_le_bytes());
    p.extend_from_slice(&resp.attempts.to_le_bytes());
    p.extend_from_slice(&resp.stamp.to_le_bytes());
    p.extend_from_slice(&(resp.batch.len() as u32).to_le_bytes());
    p.extend_from_slice(&(resp.detail.len() as u32).to_le_bytes());
    for b in &resp.batch {
        p.push(u8::from(b.applied));
        p.extend_from_slice(&b.stamp.to_le_bytes());
    }
    p.extend_from_slice(resp.detail.as_bytes());
    frame(KIND_RESPONSE, &p)
}

/// Decodes a response frame.
///
/// # Errors
///
/// [`CodecError`] on any framing or field problem.
pub fn decode_response(buf: &[u8]) -> Result<Response, CodecError> {
    let payload = deframe(buf, KIND_RESPONSE)?;
    let mut c = Cursor::new(payload);
    let id = c.u64()?;
    let status = Status::from_code(c.u8()?).ok_or(CodecError::BadField("status"))?;
    let found = match c.u8()? {
        0 => None,
        1 => Some(false),
        2 => Some(true),
        _ => return Err(CodecError::BadField("found")),
    };
    if c.u16()? != 0 {
        return Err(CodecError::BadField("response padding"));
    }
    let attempts = c.u32()?;
    let stamp = c.u64()?;
    let nbatch = c.u32()? as usize;
    let detail_len = c.u32()? as usize;
    let mut batch = Vec::with_capacity(nbatch.min(1024));
    for _ in 0..nbatch {
        let applied = match c.u8()? {
            0 => false,
            1 => true,
            _ => return Err(CodecError::BadField("batch result flag")),
        };
        let stamp = c.u64()?;
        batch.push(BatchResult { applied, stamp });
    }
    let detail = String::from_utf8(c.take(detail_len)?.to_vec())
        .map_err(|_| CodecError::BadField("detail utf-8"))?;
    c.done()?;
    Ok(Response {
        id,
        status,
        found,
        attempts,
        stamp,
        batch,
        detail,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_requests() -> Vec<Request> {
        vec![
            Request {
                id: 1,
                tenant: 7,
                priority: Priority::Low,
                deadline_micros: 0,
                op: ReqOp::Get { key: 42 },
            },
            Request {
                id: 2,
                tenant: 0,
                priority: Priority::Normal,
                deadline_micros: 1_000_000,
                op: ReqOp::Put { key: u64::MAX },
            },
            Request {
                id: 3,
                tenant: 9,
                priority: Priority::High,
                deadline_micros: 5,
                op: ReqOp::Delete { key: 0 },
            },
            Request {
                id: 4,
                tenant: 3,
                priority: Priority::High,
                deadline_micros: 0,
                op: ReqOp::Batch {
                    ops: vec![
                        BatchOp { put: true, key: 1 },
                        BatchOp { put: false, key: 2 },
                        BatchOp { put: true, key: 3 },
                    ],
                },
            },
            Request {
                id: 5,
                tenant: 1,
                priority: Priority::Normal,
                deadline_micros: 0,
                op: ReqOp::Evict,
            },
            Request {
                id: 6,
                tenant: 1,
                priority: Priority::Normal,
                deadline_micros: 0,
                op: ReqOp::Heal,
            },
            Request {
                id: 7,
                tenant: 2,
                priority: Priority::Normal,
                deadline_micros: 250,
                op: ReqOp::PrefixQuery {
                    prefix: "car".to_string(),
                },
            },
            Request {
                id: 8,
                tenant: 2,
                priority: Priority::Low,
                deadline_micros: 0,
                op: ReqOp::PrefixQuery {
                    prefix: String::new(),
                },
            },
        ]
    }

    fn sample_responses() -> Vec<Response> {
        vec![
            Response {
                id: 1,
                status: Status::Ok,
                found: Some(true),
                attempts: 1,
                stamp: 99,
                batch: Vec::new(),
                detail: String::new(),
            },
            Response {
                id: 2,
                status: Status::Degraded,
                found: None,
                attempts: 0,
                stamp: 0,
                batch: Vec::new(),
                detail: "read-only after failover".to_string(),
            },
            Response {
                id: 3,
                status: Status::Ok,
                found: None,
                attempts: 2,
                stamp: 104,
                batch: vec![
                    BatchResult {
                        applied: true,
                        stamp: 103,
                    },
                    BatchResult {
                        applied: false,
                        stamp: 104,
                    },
                ],
                detail: String::new(),
            },
            Response::rejection(4, Status::Overloaded, "queue full"),
            Response::rejection(5, Status::Malformed, "frame CRC mismatch"),
        ]
    }

    #[test]
    fn request_roundtrip() {
        for req in sample_requests() {
            let bytes = encode_request(&req);
            assert_eq!(decode_request(&bytes).unwrap(), req, "{req:?}");
        }
    }

    #[test]
    fn response_roundtrip() {
        for resp in sample_responses() {
            let bytes = encode_response(&resp);
            assert_eq!(decode_response(&bytes).unwrap(), resp, "{resp:?}");
        }
    }

    #[test]
    fn truncation_at_every_length_is_a_clean_error() {
        // Both variable-length request shapes: a batch and a prefix query.
        for req in [&sample_requests()[3], &sample_requests()[6]] {
            let bytes = encode_request(req);
            for n in 0..bytes.len() {
                let err = decode_request(&bytes[..n]).unwrap_err();
                assert!(
                    matches!(err, CodecError::Truncated | CodecError::BadCrc),
                    "prefix {n}: {err:?}"
                );
            }
        }
        let resp = &sample_responses()[2];
        let bytes = encode_response(resp);
        for n in 0..bytes.len() {
            decode_response(&bytes[..n]).unwrap_err();
        }
    }

    #[test]
    fn every_flipped_bit_is_caught() {
        let bytes = encode_request(&sample_requests()[1]);
        for byte in 0..bytes.len() {
            let mut broken = bytes.clone();
            broken[byte] ^= 0x40;
            assert!(
                decode_request(&broken).is_err(),
                "flip at byte {byte} decoded"
            );
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = encode_request(&sample_requests()[0]);
        bytes.push(0);
        assert!(decode_request(&bytes).is_err());
    }

    #[test]
    fn kind_confusion_rejected() {
        let req_bytes = encode_request(&sample_requests()[0]);
        assert_eq!(
            decode_response(&req_bytes).unwrap_err(),
            CodecError::BadKind(KIND_REQUEST)
        );
        let resp_bytes = encode_response(&sample_responses()[0]);
        assert_eq!(
            decode_request(&resp_bytes).unwrap_err(),
            CodecError::BadKind(KIND_RESPONSE)
        );
    }

    #[test]
    fn unknown_codes_rejected() {
        // Op code 7 does not exist: corrupt the encoded op byte and
        // re-seal the frame so only the field check can object.
        let mut bytes = encode_request(&sample_requests()[0]);
        let op_off = HEADER_BYTES + 8 + 4 + 1;
        bytes[op_off] = 7;
        let payload = bytes[HEADER_BYTES..].to_vec();
        let resealed = frame(KIND_REQUEST, &payload);
        assert_eq!(
            decode_request(&resealed).unwrap_err(),
            CodecError::BadField("op code")
        );
    }

    #[test]
    fn oversized_or_non_utf8_prefixes_rejected() {
        let long = Request {
            id: 9,
            tenant: 2,
            priority: Priority::Normal,
            deadline_micros: 0,
            op: ReqOp::PrefixQuery {
                prefix: "z".repeat(MAX_PREFIX + 1),
            },
        };
        // The encoder happily writes it; the decoder must refuse.
        assert_eq!(
            decode_request(&encode_request(&long)).unwrap_err(),
            CodecError::BadField("prefix length")
        );

        let ok = Request {
            op: ReqOp::PrefixQuery {
                prefix: "ab".to_string(),
            },
            ..long
        };
        let bytes = encode_request(&ok);
        // Smash the first prefix byte to a lone UTF-8 continuation byte
        // and re-seal, so only the string check can object.
        let mut payload = bytes[HEADER_BYTES..].to_vec();
        let plen = payload.len();
        payload[plen - 2] = 0xFF;
        assert_eq!(
            decode_request(&frame(KIND_REQUEST, &payload)).unwrap_err(),
            CodecError::BadField("prefix utf-8")
        );
    }
}
