//! The sharded region server: bounded per-shard queues with admission
//! control, deadline enforcement, capped-backoff retries, LRU tenant
//! eviction with remapped reopen, and the crash/failover paths of the
//! degradation ladder. See the crate docs for the policy overview.

use crate::codec::{self, BatchOp, BatchResult, Priority, ReqOp, Request, Response, Status};
use crate::fault::ServerFaultPlan;
use crate::tenant::{Tenant, TenantMetrics, TenantSnapshot, TenantSpec, TenantState, TenantTuning};
use nvmsim::metrics::{self, Counter};
use nvmsim::{dlin, repl};
use std::collections::{HashMap, VecDeque};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Server tuning.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Number of shards (worker threads); tenant `id % shards` routes.
    pub shards: usize,
    /// Directory holding tenant region files and replication streams.
    pub data_dir: PathBuf,
    /// Per-shard queue high-water mark; arrivals past it are shed.
    pub queue_depth: usize,
    /// Deadline applied to requests that do not carry one.
    pub default_deadline: Duration,
    /// Retries per write after transient tenant faults.
    pub max_retries: u32,
    /// Backoff before the first retry (doubled per retry, capped).
    pub retry_backoff: Duration,
    /// Ceiling on the exponential retry backoff.
    pub retry_backoff_max: Duration,
    /// Open-tenant ceiling per shard; past it the coldest open tenant
    /// is evicted (closed; its next request reopens it remapped).
    pub max_open_per_shard: usize,
    /// Requests a degraded tenant serves before healing automatically.
    pub degraded_window: u64,
}

impl ServerConfig {
    /// Defaults rooted at `data_dir`: 2 shards, depth-64 queues, 2 s
    /// default deadline, 3 retries from 1 ms capped at 20 ms, no
    /// open-tenant ceiling, 16-request degraded window.
    pub fn new(data_dir: impl Into<PathBuf>) -> ServerConfig {
        ServerConfig {
            shards: 2,
            data_dir: data_dir.into(),
            queue_depth: 64,
            default_deadline: Duration::from_secs(2),
            max_retries: 3,
            retry_backoff: Duration::from_millis(1),
            retry_backoff_max: Duration::from_millis(20),
            max_open_per_shard: usize::MAX,
            degraded_window: 16,
        }
    }
}

// -- response slots -----------------------------------------------------------

#[derive(Debug, Default)]
struct Slot {
    resp: Mutex<Option<Response>>,
    cv: Condvar,
}

impl Slot {
    fn fill(&self, r: Response) {
        let mut g = self.resp.lock().unwrap_or_else(|e| e.into_inner());
        if g.is_none() {
            *g = Some(r);
        }
        self.cv.notify_all();
    }

    fn wait(&self, limit: Duration) -> Option<Response> {
        let deadline = Instant::now() + limit;
        let mut g = self.resp.lock().unwrap_or_else(|e| e.into_inner());
        while g.is_none() {
            let now = Instant::now();
            let left = deadline.checked_duration_since(now)?;
            let (ng, _) = self
                .cv
                .wait_timeout(g, left)
                .unwrap_or_else(|e| e.into_inner());
            g = ng;
        }
        g.take()
    }
}

struct Entry {
    req: Request,
    deadline: Instant,
    slot: Arc<Slot>,
}

struct ShardQueue {
    entries: VecDeque<Entry>,
    /// Cleared by the final shutdown drain; submissions racing past the
    /// shutdown flag are refused here, under the queue lock.
    accepting: bool,
}

struct Shard {
    q: Mutex<ShardQueue>,
    work: Condvar,
    dequeued: AtomicU64,
}

impl Shard {
    fn new() -> Shard {
        Shard {
            q: Mutex::new(ShardQueue {
                entries: VecDeque::new(),
                accepting: true,
            }),
            work: Condvar::new(),
            dequeued: AtomicU64::new(0),
        }
    }
}

struct Core {
    cfg: ServerConfig,
    specs: HashMap<u32, TenantSpec>,
    plan: ServerFaultPlan,
    shards: Vec<Shard>,
    shutdown: AtomicBool,
    tmetrics: HashMap<u32, Arc<TenantMetrics>>,
    reports: Mutex<Vec<TenantReport>>,
}

/// Final state of one tenant at shutdown.
#[derive(Debug, Clone)]
pub struct TenantReport {
    /// Tenant id.
    pub id: u32,
    /// Ladder position when the server stopped.
    pub state: TenantState,
    /// Every base address the tenant's region was mapped at, in order.
    /// More than one entry means the tenant demonstrably served through
    /// a remap.
    pub bases: Vec<usize>,
    /// Keys durably in the tenant's set at close.
    pub keys: Vec<u64>,
    /// Final counter values.
    pub snapshot: TenantSnapshot,
}

/// Everything the server knew when it stopped.
#[derive(Debug, Clone, Default)]
pub struct ServerReport {
    /// One report per configured tenant (opened or not).
    pub tenants: Vec<TenantReport>,
}

impl ServerReport {
    /// The report for tenant `id`, if present.
    pub fn tenant(&self, id: u32) -> Option<&TenantReport> {
        self.tenants.iter().find(|t| t.id == id)
    }
}

// -- transport ----------------------------------------------------------------

/// Byte-level request/response transport. The loopback implementation
/// is a [`ServerHandle`]; a socket implementation carries the same
/// frames unchanged.
pub trait Transport: Send + Sync {
    /// Submits one encoded request frame and returns the encoded
    /// response frame.
    fn call(&self, frame: &[u8]) -> Vec<u8>;
}

/// Cheap cloneable handle for submitting requests to a running server.
#[derive(Clone)]
pub struct ServerHandle {
    core: Arc<Core>,
}

impl Transport for ServerHandle {
    fn call(&self, frame: &[u8]) -> Vec<u8> {
        codec::encode_response(&self.submit_frame(frame))
    }
}

impl ServerHandle {
    /// Decodes a request frame, submits it, and returns the (typed)
    /// response. Malformed frames answer `Malformed` with id 0.
    pub fn submit_frame(&self, frame: &[u8]) -> Response {
        match codec::decode_request(frame) {
            Ok(req) => self.submit(req),
            Err(e) => Response::rejection(0, Status::Malformed, e.to_string()),
        }
    }

    /// Submits a typed request and blocks for its terminal response.
    pub fn submit(&self, req: Request) -> Response {
        let core = &self.core;
        let id = req.id;
        if core.shutdown.load(Ordering::Acquire) {
            return Response::rejection(id, Status::Shutdown, "server is shutting down");
        }
        let Some(tm) = core.tmetrics.get(&req.tenant) else {
            return Response::rejection(
                id,
                Status::NoSuchTenant,
                format!("tenant {} not configured", req.tenant),
            );
        };
        let shard_idx = req.tenant as usize % core.shards.len();
        let shard = &core.shards[shard_idx];
        let deadline = Instant::now()
            + if req.deadline_micros == 0 {
                core.cfg.default_deadline
            } else {
                Duration::from_micros(req.deadline_micros)
            };
        let slot = Arc::new(Slot::default());
        {
            let mut q = shard.q.lock().unwrap_or_else(|e| e.into_inner());
            if !q.accepting {
                return Response::rejection(id, Status::Shutdown, "server is shutting down");
            }
            if q.entries.len() >= core.cfg.queue_depth {
                // Past the high-water mark: shed the lowest-priority
                // queued request if it ranks strictly below the arrival,
                // otherwise reject the arrival itself.
                let min_idx = q
                    .entries
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, e)| e.req.priority)
                    .map(|(i, _)| i);
                match min_idx {
                    Some(i) if q.entries[i].req.priority < req.priority => {
                        let shed = q.entries.remove(i).expect("index in range");
                        metrics::incr(Counter::SrvShed);
                        if let Some(m) = core.tmetrics.get(&shed.req.tenant) {
                            m.overloaded.fetch_add(1, Ordering::Relaxed);
                        }
                        shed.slot.fill(Response::rejection(
                            shed.req.id,
                            Status::Overloaded,
                            "shed for a higher-priority arrival",
                        ));
                    }
                    _ => {
                        drop(q);
                        metrics::incr(Counter::SrvShed);
                        tm.overloaded.fetch_add(1, Ordering::Relaxed);
                        return Response::rejection(id, Status::Overloaded, "shard queue full");
                    }
                }
            }
            metrics::incr(Counter::SrvRequests);
            tm.requests.fetch_add(1, Ordering::Relaxed);
            q.entries.push_back(Entry {
                req,
                deadline,
                slot: slot.clone(),
            });
        }
        shard.work.notify_all();
        // Workers answer every dequeued request and the shutdown drain
        // answers the rest; the long stop here is a backstop against a
        // wedged worker, not a code path requests are expected to take.
        slot.wait(core.cfg.default_deadline + Duration::from_secs(60))
            .unwrap_or_else(|| {
                Response::rejection(id, Status::Failed, "response slot wait timed out")
            })
    }

    /// Live metrics handle for a tenant.
    pub fn tenant_metrics(&self, tenant: u32) -> Option<Arc<TenantMetrics>> {
        self.core.tmetrics.get(&tenant).cloned()
    }
}

/// Typed client over any [`Transport`] — every helper round-trips
/// through the frame codec, so loopback traffic exercises exactly the
/// bytes a socket would carry.
pub struct Client {
    transport: Arc<dyn Transport>,
    next_id: AtomicU64,
    /// Priority attached to this client's requests.
    pub priority: Priority,
    /// Deadline attached to this client's requests (0 = server default).
    pub deadline_micros: u64,
}

impl Client {
    /// A client with normal priority and the server's default deadline.
    pub fn new(transport: Arc<dyn Transport>) -> Client {
        Client {
            transport,
            next_id: AtomicU64::new(1),
            priority: Priority::Normal,
            deadline_micros: 0,
        }
    }

    /// Sets the priority for subsequent requests.
    pub fn with_priority(mut self, p: Priority) -> Client {
        self.priority = p;
        self
    }

    /// Sets the per-request deadline for subsequent requests.
    pub fn with_deadline(mut self, d: Duration) -> Client {
        self.deadline_micros = d.as_micros() as u64;
        self
    }

    /// Sends `op` against `tenant` and returns the decoded response.
    pub fn request(&self, tenant: u32, op: ReqOp) -> Response {
        let req = Request {
            id: self.next_id.fetch_add(1, Ordering::Relaxed),
            tenant,
            priority: self.priority,
            deadline_micros: self.deadline_micros,
            op,
        };
        let frame = codec::encode_request(&req);
        let resp_frame = self.transport.call(&frame);
        codec::decode_response(&resp_frame).unwrap_or_else(|e| {
            Response::rejection(req.id, Status::Malformed, format!("response frame: {e}"))
        })
    }

    /// Membership probe.
    pub fn get(&self, tenant: u32, key: u64) -> Response {
        self.request(tenant, ReqOp::Get { key })
    }

    /// Transactional insert.
    pub fn put(&self, tenant: u32, key: u64) -> Response {
        self.request(tenant, ReqOp::Put { key })
    }

    /// Transactional remove.
    pub fn delete(&self, tenant: u32, key: u64) -> Response {
        self.request(tenant, ReqOp::Delete { key })
    }

    /// Ordered batch of writes.
    pub fn batch(&self, tenant: u32, ops: Vec<BatchOp>) -> Response {
        self.request(tenant, ReqOp::Batch { ops })
    }

    /// Force-evict (close) the tenant.
    pub fn evict(&self, tenant: u32) -> Response {
        self.request(tenant, ReqOp::Evict)
    }

    /// Suggestion lookup: indexed words starting with `prefix`, sorted,
    /// newline-separated in the response detail (capped, with a final
    /// `… N more` line when truncated).
    pub fn prefix(&self, tenant: u32, prefix: &str) -> Response {
        self.request(
            tenant,
            ReqOp::PrefixQuery {
                prefix: prefix.to_string(),
            },
        )
    }

    /// Force-heal a degraded tenant.
    pub fn heal(&self, tenant: u32) -> Response {
        self.request(tenant, ReqOp::Heal)
    }
}

// -- the server ---------------------------------------------------------------

/// A running region server. Submit through [`Server::handle`] /
/// [`Server::client`]; stop with [`Server::shutdown`].
pub struct Server {
    core: Arc<Core>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Starts a server with the given tenants. Creates `data_dir` (and
    /// the shard workers) immediately; tenant regions are created lazily
    /// on first request.
    ///
    /// # Errors
    ///
    /// I/O creating the data directory or spawning workers.
    pub fn start(
        cfg: ServerConfig,
        tenants: Vec<TenantSpec>,
        plan: ServerFaultPlan,
    ) -> std::io::Result<Server> {
        assert!(cfg.shards > 0, "at least one shard");
        assert!(cfg.queue_depth > 0, "queue depth must be positive");
        std::fs::create_dir_all(&cfg.data_dir)?;
        let mut specs = HashMap::new();
        let mut tmetrics = HashMap::new();
        for t in tenants {
            tmetrics.insert(t.id, Arc::new(TenantMetrics::default()));
            specs.insert(t.id, t);
        }
        let shards = (0..cfg.shards).map(|_| Shard::new()).collect();
        let core = Arc::new(Core {
            cfg,
            specs,
            plan,
            shards,
            shutdown: AtomicBool::new(false),
            tmetrics,
            reports: Mutex::new(Vec::new()),
        });
        let mut workers = Vec::new();
        for shard_idx in 0..core.shards.len() {
            let core = core.clone();
            workers.push(
                std::thread::Builder::new()
                    .name(format!("nvsrv-shard-{shard_idx}"))
                    .spawn(move || worker(core, shard_idx))?,
            );
        }
        Ok(Server { core, workers })
    }

    /// A cheap submission handle (also the loopback [`Transport`]).
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            core: self.core.clone(),
        }
    }

    /// A typed client over the loopback transport.
    pub fn client(&self) -> Client {
        Client::new(Arc::new(self.handle()))
    }

    /// Stops the server: workers finish every queued request, close
    /// their tenants cleanly (sealing replication streams), and report
    /// final per-tenant state. Requests arriving during shutdown answer
    /// `Shutdown`.
    pub fn shutdown(self) -> ServerReport {
        self.core.shutdown.store(true, Ordering::Release);
        for s in &self.core.shards {
            s.work.notify_all();
        }
        for w in self.workers {
            let _ = w.join();
        }
        // Refuse and drain anything that raced past the shutdown flag.
        for s in &self.core.shards {
            let mut q = s.q.lock().unwrap_or_else(|e| e.into_inner());
            q.accepting = false;
            while let Some(e) = q.entries.pop_front() {
                e.slot.fill(Response::rejection(
                    e.req.id,
                    Status::Shutdown,
                    "server stopped before execution",
                ));
            }
        }
        let mut reports =
            std::mem::take(&mut *self.core.reports.lock().unwrap_or_else(|e| e.into_inner()));
        // Tenants that never opened still get a report row.
        for id in self.core.specs.keys() {
            if !reports.iter().any(|r| r.id == *id) {
                reports.push(TenantReport {
                    id: *id,
                    state: TenantState::Closed,
                    bases: Vec::new(),
                    keys: Vec::new(),
                    snapshot: self.core.tmetrics[id].snapshot(),
                });
            }
        }
        reports.sort_by_key(|r| r.id);
        ServerReport { tenants: reports }
    }
}

// -- shard worker -------------------------------------------------------------

fn worker(core: Arc<Core>, shard_idx: usize) {
    let shard = &core.shards[shard_idx];
    let mut tenants: HashMap<u32, Tenant> = HashMap::new();
    let mut tick = 0u64;
    loop {
        let entry = {
            let mut q = shard.q.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(e) = q.entries.pop_front() {
                    break Some(e);
                }
                if core.shutdown.load(Ordering::Acquire) {
                    break None;
                }
                q = shard.work.wait(q).unwrap_or_else(|e| e.into_inner());
            }
        };
        let Some(entry) = entry else { break };
        tick += 1;
        let nth = shard.dequeued.fetch_add(1, Ordering::Relaxed) + 1;
        if let Some(stall) = core.plan.take_stall(shard_idx, nth) {
            std::thread::sleep(stall);
        }
        let resp = handle_entry(&core, &mut tenants, &entry, tick);
        record_terminal(&core, entry.req.tenant, &resp);
        entry.slot.fill(resp);
    }
    // Shutdown: close every tenant cleanly and report final state. A
    // tenant sitting evicted when the server stops is reopened first so
    // the report still carries its final keys (and the reopen is one
    // more remap audit for free).
    let mut reports = Vec::new();
    for (_, mut t) in tenants.drain() {
        if !t.is_open() && !t.bases.is_empty() {
            if let Err(e) = t.ensure_open(&core.plan) {
                eprintln!("nvserver: tenant {} reopen at shutdown: {e}", t.spec.id);
            }
        }
        let keys = if t.is_open() { t.keys() } else { Vec::new() };
        if let Err(e) = t.check_invariants() {
            eprintln!("nvserver: tenant {} invariants at shutdown: {e}", t.spec.id);
        }
        if let Err(e) = t.shutdown() {
            // Keep the report; the failure is visible in the metrics.
            eprintln!("nvserver: tenant {} shutdown: {e}", t.spec.id);
        }
        reports.push(TenantReport {
            id: t.spec.id,
            state: t.state(),
            bases: t.bases.clone(),
            keys,
            snapshot: t.metrics.snapshot(),
        });
    }
    core.reports
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .extend(reports);
}

fn record_terminal(core: &Core, tenant: u32, resp: &Response) {
    let Some(m) = core.tmetrics.get(&tenant) else {
        return;
    };
    let c = match resp.status {
        Status::Ok => &m.ok,
        Status::Overloaded => &m.overloaded,
        Status::DeadlineExceeded => {
            metrics::incr(Counter::SrvDeadlineExceeded);
            &m.deadline_exceeded
        }
        Status::Degraded => {
            metrics::incr(Counter::SrvDegradedResponses);
            &m.degraded
        }
        _ => &m.failed,
    };
    c.fetch_add(1, Ordering::Relaxed);
}

fn handle_entry(
    core: &Core,
    tenants: &mut HashMap<u32, Tenant>,
    entry: &Entry,
    tick: u64,
) -> Response {
    let req = &entry.req;
    if Instant::now() > entry.deadline {
        return Response::rejection(req.id, Status::DeadlineExceeded, "expired in queue");
    }
    let spec = core.specs[&req.tenant].clone();
    // LRU pressure: opening this tenant must not exceed the per-shard
    // ceiling, so evict the coldest open tenant first.
    let needs_open = !tenants.get(&req.tenant).is_some_and(Tenant::is_open);
    if needs_open {
        if let Err(e) = evict_coldest(tenants, core.cfg.max_open_per_shard) {
            return Response::rejection(req.id, Status::Failed, e);
        }
    }
    let tuning = TenantTuning {
        max_retries: core.cfg.max_retries,
        retry_backoff: core.cfg.retry_backoff,
        retry_backoff_max: core.cfg.retry_backoff_max,
        degraded_window: core.cfg.degraded_window,
    };
    let metrics_arc = core.tmetrics[&req.tenant].clone();
    let data_dir = core.cfg.data_dir.clone();
    let tenant = tenants
        .entry(req.tenant)
        .or_insert_with(|| Tenant::new(spec, &data_dir, metrics_arc, tuning));
    tenant.last_used = tick;

    // Eviction works even on an open tenant and needs no reopen.
    if matches!(req.op, ReqOp::Evict) {
        return match tenant.evict() {
            Ok(()) => Response {
                id: req.id,
                status: Status::Ok,
                found: None,
                attempts: 1,
                stamp: 0,
                batch: Vec::new(),
                detail: "evicted".to_string(),
            },
            Err(e) => Response::rejection(req.id, Status::Failed, e),
        };
    }

    if let Err(e) = tenant.ensure_open(&core.plan) {
        // A degraded-but-serving tenant (e.g. replication attach failed)
        // still answers; a tenant that could not open at all fails.
        if !tenant.is_open() {
            return Response::rejection(req.id, Status::Failed, e);
        }
    }

    // Degraded-window bookkeeping: every request against a degraded
    // tenant brings it one step closer to the automatic heal.
    if tenant.tick_degraded() {
        let _ = tenant.heal(&core.plan);
    }

    match &req.op {
        ReqOp::Heal => match tenant.heal(&core.plan) {
            Ok(()) => Response {
                id: req.id,
                status: Status::Ok,
                found: None,
                attempts: 1,
                stamp: 0,
                batch: Vec::new(),
                detail: tenant.state().name().to_string(),
            },
            Err(e) => Response::rejection(req.id, Status::Failed, e),
        },
        ReqOp::Get { key } => {
            let found = tenant.contains(*key);
            Response {
                id: req.id,
                status: Status::Ok,
                found: Some(found),
                attempts: 1,
                stamp: 0,
                batch: Vec::new(),
                detail: if tenant.state().read_only() {
                    tenant.state().name().to_string()
                } else {
                    String::new()
                },
            }
        }
        ReqOp::PrefixQuery { prefix } => match tenant.prefix_scan(prefix) {
            Ok(matches) => {
                // Reads serve in every open state, degraded included.
                let total = matches.len();
                let capped: Vec<String> = matches.into_iter().take(MAX_PREFIX_MATCHES).collect();
                Response {
                    id: req.id,
                    status: Status::Ok,
                    found: Some(total > 0),
                    attempts: 1,
                    stamp: 0,
                    batch: Vec::new(),
                    detail: if total > capped.len() {
                        format!("{}\n… {} more", capped.join("\n"), total - capped.len())
                    } else {
                        capped.join("\n")
                    },
                }
            }
            Err(e) => Response::rejection(req.id, Status::Failed, e),
        },
        ReqOp::Put { key } => write_path(core, tenant, entry, true, *key),
        ReqOp::Delete { key } => write_path(core, tenant, entry, false, *key),
        ReqOp::Batch { ops } => batch_path(core, tenant, entry, ops),
        ReqOp::Evict => unreachable!("handled before reopen"),
    }
}

/// Most matches a prefix-query response carries; the tail is summarized
/// in the detail's final line.
const MAX_PREFIX_MATCHES: usize = 16;

fn evict_coldest(tenants: &mut HashMap<u32, Tenant>, max_open: usize) -> Result<(), String> {
    loop {
        let open: Vec<(u32, u64)> = tenants
            .iter()
            .filter(|(_, t)| t.is_open())
            .map(|(id, t)| (*id, t.last_used))
            .collect();
        if open.len() < max_open {
            return Ok(());
        }
        let coldest = open
            .iter()
            .min_by_key(|(_, used)| *used)
            .map(|(id, _)| *id)
            .expect("open set non-empty");
        tenants.get_mut(&coldest).expect("tenant present").evict()?;
    }
}

/// Outcome of one write attempt, before terminal-response shaping.
enum WriteOutcome {
    Committed { applied: bool, stamp: u64 },
    Terminal(Response),
}

/// Runs one write (insert or remove) through the fault plan, the crash
/// paths, and the capped-backoff retry ladder.
fn write_once(
    core: &Core,
    tenant: &mut Tenant,
    entry: &Entry,
    put: bool,
    key: u64,
    attempts: &mut u32,
) -> WriteOutcome {
    let req_id = entry.req.id;
    loop {
        if Instant::now() > entry.deadline {
            return WriteOutcome::Terminal(Response::rejection(
                req_id,
                Status::DeadlineExceeded,
                "deadline passed during execution",
            ));
        }
        *attempts += 1;
        tenant.writes += 1;
        let ordinal = tenant.writes;

        if let Some(crash) = core.plan.take_crash(tenant.spec.id, ordinal) {
            // The crash lands before this write's transaction begins:
            // the triggering write is never acked out of a crash it did
            // not survive.
            let outcome = if crash.failover {
                tenant.crash_and_failover(crash.policy, &core.plan)
            } else {
                tenant.crash_and_recover(crash.policy, &core.plan)
            };
            match outcome {
                Ok(()) if tenant.state().read_only() => {
                    return WriteOutcome::Terminal(Response::rejection(
                        req_id,
                        Status::Degraded,
                        format!("write refused: {}", tenant.state().name()),
                    ));
                }
                Ok(()) => continue, // recovered in place; retry the write
                Err(e) => {
                    return WriteOutcome::Terminal(Response::rejection(
                        req_id,
                        Status::Failed,
                        format!("crash handling failed: {e}"),
                    ))
                }
            }
        }

        if tenant.state().read_only() {
            return WriteOutcome::Terminal(Response::rejection(
                req_id,
                Status::Degraded,
                format!("write refused: {}", tenant.state().name()),
            ));
        }

        if core.plan.take_transient_failure(tenant.spec.id, ordinal) {
            if *attempts > core.cfg.max_retries {
                return WriteOutcome::Terminal(Response::rejection(
                    req_id,
                    Status::Failed,
                    "transient fault: retries exhausted",
                ));
            }
            tenant.metrics.retries.fetch_add(1, Ordering::Relaxed);
            metrics::incr(Counter::SrvRetries);
            let wait = repl::capped_backoff(
                core.cfg.retry_backoff,
                core.cfg.retry_backoff_max,
                *attempts - 1,
            );
            let left = entry.deadline.saturating_duration_since(Instant::now());
            std::thread::sleep(wait.min(left));
            continue;
        }

        let result = if put {
            tenant.insert(key)
        } else {
            tenant.remove(key)
        };
        return match result {
            Ok(applied) => {
                // The commit was a durability point (flushed, fenced,
                // and captured into the replication stream) before this
                // stamp is drawn — the dlin ack discipline.
                let stamp = dlin::next_stamp();
                tenant.check_repl_health();
                WriteOutcome::Committed { applied, stamp }
            }
            Err(e) => WriteOutcome::Terminal(Response::rejection(req_id, Status::Failed, e)),
        };
    }
}

fn write_path(core: &Core, tenant: &mut Tenant, entry: &Entry, put: bool, key: u64) -> Response {
    let mut attempts = 0;
    match write_once(core, tenant, entry, put, key, &mut attempts) {
        WriteOutcome::Committed { applied, stamp } => Response {
            id: entry.req.id,
            status: Status::Ok,
            found: Some(applied),
            attempts,
            stamp,
            batch: Vec::new(),
            detail: if tenant.state().read_only() {
                tenant.state().name().to_string()
            } else {
                String::new()
            },
        },
        WriteOutcome::Terminal(mut r) => {
            r.attempts = attempts;
            r
        }
    }
}

fn batch_path(core: &Core, tenant: &mut Tenant, entry: &Entry, ops: &[BatchOp]) -> Response {
    let mut attempts = 0;
    let mut batch = Vec::with_capacity(ops.len());
    let mut last_stamp = 0;
    for op in ops {
        match write_once(core, tenant, entry, op.put, op.key, &mut attempts) {
            WriteOutcome::Committed { applied, stamp } => {
                batch.push(BatchResult { applied, stamp });
                last_stamp = stamp;
            }
            WriteOutcome::Terminal(mut r) => {
                // Entries committed before the fault stay committed (and
                // acked in the partial batch) — the response says where
                // the batch stopped.
                r.attempts = attempts;
                r.batch = batch;
                r.detail = format!(
                    "batch stopped after {} entries: {}",
                    r.batch.len(),
                    r.detail
                );
                return r;
            }
        }
    }
    Response {
        id: entry.req.id,
        status: Status::Ok,
        found: None,
        attempts,
        stamp: last_stamp,
        batch,
        detail: String::new(),
    }
}
