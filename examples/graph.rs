//! The graph NVSet of the paper's Figure 2: a persistent dependency graph
//! built once, reopened later at a different address, and queried without
//! any rebuild or fixup.
//!
//! ```text
//! cargo run --example graph
//! ```

use nvm_pi::{NodeArena, OffHolder, PGraph, Region};

const PKGS: &[(&str, u64)] = &[
    ("core", 100),
    ("alloc", 90),
    ("std", 80),
    ("serde", 50),
    ("rand", 40),
    ("app", 10),
];

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join(format!("nvm-pi-graph-{}", std::process::id()));
    std::fs::create_dir_all(&dir)?;
    let path = dir.join("deps.nvr");

    // Run 1: persist a package-dependency graph.
    {
        let region = Region::create_file(&path, 4 << 20)?;
        let mut g: PGraph<OffHolder> =
            PGraph::create_rooted(NodeArena::raw(region.clone()), 32, "deps")?;
        for &(_, weight) in PKGS {
            g.add_node(weight)?;
        }
        let id = |name: &str| PKGS.iter().position(|p| p.0 == name).unwrap() as u32;
        for (from, to) in [
            ("alloc", "core"),
            ("std", "core"),
            ("std", "alloc"),
            ("serde", "std"),
            ("rand", "std"),
            ("app", "serde"),
            ("app", "rand"),
        ] {
            g.add_edge(id(from), id(to), 1)?;
        }
        println!(
            "persisted graph: {} nodes, {} edges at base {:#x}",
            g.node_count(),
            g.edge_count(),
            region.base()
        );
        region.close()?;
    }

    // Run 2: reopen (different address) and answer reachability queries.
    let region = Region::open_file(&path)?;
    println!("reopened at base {:#x}", region.base());
    let g: PGraph<OffHolder> = PGraph::attach(NodeArena::raw(region.clone()), "deps")?;
    let app = PKGS.iter().position(|p| p.0 == "app").unwrap() as u32;
    let reachable = g.bfs(app);
    println!(
        "app transitively depends on {} packages:",
        reachable.len() - 1
    );
    for id in &reachable[1..] {
        println!("  {}", PKGS[*id as usize].0);
    }
    assert_eq!(
        reachable.len(),
        PKGS.len(),
        "app reaches everything in this graph"
    );

    region.close()?;
    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}
