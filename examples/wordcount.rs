//! The paper's `wordcount` application (Section 6.3): count word
//! frequencies into a persistent BST, then reopen the region and query the
//! counts without recomputing anything.
//!
//! ```text
//! cargo run --release --example wordcount [N_WORDS]
//! ```

use nvm_pi::{NodeArena, OffHolder, Region, WordCount};
use std::time::Instant;

// A small deterministic "document" generator (no external corpus needed).
fn generate_words(n: usize) -> Vec<String> {
    const COMMON: &[&str] = &[
        "the",
        "of",
        "and",
        "to",
        "a",
        "in",
        "is",
        "was",
        "he",
        "for",
        "it",
        "with",
        "as",
        "his",
        "on",
        "be",
        "at",
        "by",
        "had",
        "not",
        "are",
        "but",
        "from",
        "or",
        "have",
        "memory",
        "pointer",
        "region",
        "data",
        "persistent",
        "structure",
        "system",
    ];
    let mut out = Vec::with_capacity(n);
    let mut x = 0x243f_6a88_85a3_08d3u64;
    for _ in 0..n {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        if x % 10 < 7 {
            out.push(COMMON[(x as usize / 16) % COMMON.len()].to_string());
        } else {
            // A rarer word: "w<small-number>"
            out.push(format!("w{}", (x >> 24) % 5000));
        }
    }
    out
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(200_000);
    let dir = std::env::temp_dir().join(format!("nvm-pi-wc-{}", std::process::id()));
    std::fs::create_dir_all(&dir)?;
    let path = dir.join("wordcount.nvr");

    let words = generate_words(n);
    println!("counting {n} words into a persistent BST (off-holder pointers)...");

    {
        let region = Region::create_file(&path, 32 << 20)?;
        let mut wc: WordCount<OffHolder> =
            WordCount::create_rooted(NodeArena::raw(region.clone()), "wordcount")?;
        let t = Instant::now();
        wc.add_all(words.iter().map(|s| s.as_str()))?;
        println!(
            "counted in {:?}: {} total, {} distinct",
            t.elapsed(),
            wc.total(),
            wc.distinct()
        );
        for (word, count) in wc.top_k(5) {
            println!("  {word:<12} {count}");
        }
        region.close()?;
    }

    // Second run: the counts are already there; no recount needed.
    let region = Region::open_file(&path)?;
    let wc: WordCount<OffHolder> = WordCount::attach(NodeArena::raw(region.clone()), "wordcount")?;
    assert!(wc.verify());
    println!(
        "reopened at {:#x}: {} totals intact, count(\"the\") = {}",
        region.base(),
        wc.total(),
        wc.count("the")
    );
    region.close()?;
    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}
