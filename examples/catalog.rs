//! The paper's Figure 9 scenario: a **cross-region linked list**.
//!
//! An order list lives in one NVRegion; each order points at a product
//! record stored in a *different* NVRegion (a shared product catalog).
//! Intra-region `next` links use `persistentI` (off-holder); the
//! cross-region product links use `persistentX` (RIV) — and the type
//! system's dynamic check refuses to store a cross-region target into a
//! `persistentI` slot.
//!
//! ```text
//! cargo run --example catalog
//! ```

use nvm_pi::pi_core::semantics;
use nvm_pi::{PersistentI, PersistentX, Region};

/// A product record in the catalog region.
#[repr(C)]
struct Product {
    id: u64,
    price_cents: u64,
    name: [u8; 32],
}

/// An order node: intra-region `next`, cross-region `product`.
#[repr(C)]
struct Order {
    next: PersistentI<Order>,
    product: PersistentX<Product>,
    quantity: u64,
}

fn make_product(region: &Region, id: u64, price: u64, name: &str) -> *mut Product {
    let p = region
        .alloc(std::mem::size_of::<Product>(), 8)
        .unwrap()
        .as_ptr() as *mut Product;
    unsafe {
        (*p).id = id;
        (*p).price_cents = price;
        (*p).name = [0; 32];
        (&mut (*p).name)[..name.len()].copy_from_slice(name.as_bytes());
    }
    p
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Two regions: the shared catalog and this customer's orders.
    let catalog = Region::create(1 << 20)?;
    let orders = Region::create(1 << 20)?;
    println!(
        "catalog = region {} @ {:#x}, orders = region {} @ {:#x}",
        catalog.rid(),
        catalog.base(),
        orders.rid(),
        orders.base()
    );

    let products = [
        make_product(&catalog, 1, 399, "coffee"),
        make_product(&catalog, 2, 1299, "beans-1kg"),
        make_product(&catalog, 3, 4999, "grinder"),
    ];

    // Build the order list: three orders, newest first.
    let mut head: *mut Order = std::ptr::null_mut();
    for (i, &product) in products.iter().enumerate() {
        let o = orders.alloc(std::mem::size_of::<Order>(), 8)?.as_ptr() as *mut Order;
        unsafe {
            (*o).next.init();
            (*o).product.init();
            // `i = p` with the same-region check (always passes here).
            semantics::assign_i_from_p(&mut (*o).next, head)?;
            // `x = p`: cross-region store through RIV.
            semantics::assign_x_from_p(&mut (*o).product, product)?;
            (*o).quantity = (i as u64 + 1) * 2;
        }
        head = o;
    }
    orders.set_root("orders", head as usize)?;

    // Traverse exactly like Figure 9: `p = p->next` and `p->product->...`
    // are plain pointer-looking accesses.
    let mut total = 0u64;
    let mut cur = orders.root("orders").unwrap() as *const Order;
    while !cur.is_null() {
        unsafe {
            let product = (*cur).product.get();
            let name = &(*product).name;
            let name_len = name.iter().position(|&b| b == 0).unwrap_or(name.len());
            println!(
                "order: {:>2} x {:<10} @ {:>5} cents  (product record in region {})",
                (*cur).quantity,
                std::str::from_utf8(&name[..name_len])?,
                (*product).price_cents,
                nvm_pi::NvSpace::global().rid_of_addr(product as usize),
            );
            total += (*cur).quantity * (*product).price_cents;
            cur = (*cur).next.get();
        }
    }
    println!("order total: {total} cents");

    // Type safety: a persistentI slot refuses a cross-region target.
    unsafe {
        let o = orders.root("orders").unwrap() as *mut Order;
        let foreign = products[0] as *mut Order; // (type punned for the demo)
        let err = semantics::assign_i_from_p(&mut (*o).next, foreign).unwrap_err();
        println!("as expected, cross-region persistentI store rejected: {err}");
    }

    catalog.close()?;
    orders.close()?;
    Ok(())
}
