//! Crash recovery with the transactional object store: a simulated crash
//! in the middle of a transaction rolls back cleanly on the next open.
//!
//! ```text
//! cargo run --example crash_recovery
//! ```

use nvm_pi::{ObjectStore, Region};

const ACCOUNT_TYPE: u32 = 7;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join(format!("nvm-pi-crash-{}", std::process::id()));
    std::fs::create_dir_all(&dir)?;
    let path = dir.join("bank.nvr");

    // Run 1: create two "accounts" and commit initial balances.
    {
        let region = Region::create_file(&path, 1 << 20)?;
        let store = ObjectStore::format(&region)?;
        let a = store.alloc(ACCOUNT_TYPE, 8)?.as_ptr() as *mut u64;
        let b = store.alloc(ACCOUNT_TYPE, 8)?.as_ptr() as *mut u64;
        unsafe {
            let mut tx = store.begin();
            tx.set(a, 1000)?;
            tx.set(b, 0)?;
            tx.commit();
        }
        println!("initial balances committed: a=1000 b=0");
        region.close()?;
    }

    // Run 2: start a transfer and crash halfway (only one side updated).
    {
        let region = Region::open_file(&path)?;
        let store = ObjectStore::attach(&region)?;
        let accounts = store.objects_of_type(ACCOUNT_TYPE);
        let (b, a) = (
            accounts[0].as_ptr() as *mut u64,
            accounts[1].as_ptr() as *mut u64,
        );
        unsafe {
            let mut tx = store.begin();
            tx.set(a, 1000 - 300)?;
            println!("debited a inside a tx (a={}), now crashing...", a.read());
            // Simulated power loss: the tx is neither committed nor aborted.
            std::mem::forget(tx);
            let _ = b;
        }
        drop(store);
        region.crash();
    }

    // Run 3: recovery restores the pre-transaction state.
    {
        let region = Region::open_file(&path)?;
        assert!(region.was_dirty(), "the image records the unclean shutdown");
        let store = ObjectStore::attach(&region)?;
        assert!(
            store.recovered(),
            "attach rolled back the interrupted transaction"
        );
        let accounts = store.objects_of_type(ACCOUNT_TYPE);
        let balances: Vec<u64> = accounts
            .iter()
            .map(|p| unsafe { *(p.as_ptr() as *const u64) })
            .collect();
        println!("after recovery: balances = {balances:?}");
        assert_eq!(
            balances.iter().sum::<u64>(),
            1000,
            "no money created or destroyed"
        );
        assert!(
            balances.contains(&1000) && balances.contains(&0),
            "transfer fully undone"
        );
        region.close()?;
    }

    std::fs::remove_dir_all(&dir).ok();
    println!("crash recovery verified");
    Ok(())
}
