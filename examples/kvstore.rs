//! A tiny persistent key-value store built from the whole stack: a
//! durable region, the transactional object store, and a `PMap` index of
//! RIV pointers to store-allocated values. Every update is crash-safe,
//! and the database reopens at whatever address the NV space hands out.
//!
//! ```text
//! cargo run --example kvstore -- set answer 42
//! cargo run --example kvstore -- get answer
//! cargo run --example kvstore -- del answer
//! cargo run --example kvstore -- list
//! ```
//!
//! The database file lives at `$TMPDIR/nvm-pi-kvstore/db.nvr`.

use nvm_pi::{NodeArena, ObjectStore, PMap, Region, Riv};
use std::path::PathBuf;

const VALUE_TYPE: u32 = 0x56414c55; // "VALU"
const MAX_VALUE: usize = 240;

fn db_path() -> PathBuf {
    let dir = std::env::temp_dir().join("nvm-pi-kvstore");
    std::fs::create_dir_all(&dir).expect("create db dir");
    dir.join("db.nvr")
}

fn key_hash(key: &str) -> u64 {
    // FNV-1a; good enough for a demo index.
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in key.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h | 1 // keep 0 free as "absent"
}

/// Value layout in the store: len byte + bytes (within one small object).
unsafe fn write_value(p: *mut u8, value: &str) {
    p.write(value.len() as u8);
    std::ptr::copy_nonoverlapping(value.as_ptr(), p.add(1), value.len());
}

unsafe fn read_value(p: *const u8) -> String {
    let len = p.read() as usize;
    let bytes = std::slice::from_raw_parts(p.add(1), len);
    String::from_utf8_lossy(bytes).into_owned()
}

type Db = (Region, ObjectStore, PMap<Riv, u64>);

fn open_db() -> Result<Db, Box<dyn std::error::Error>> {
    let path = db_path();
    let (region, store, map) = if path.exists() {
        let region = match Region::open_file(&path) {
            Ok(r) => r,
            Err(e) => {
                // A stale image from an older on-media format (or one
                // damaged beyond slot-assisted repair) fails with a typed
                // error; for a demo cache in /tmp, starting over is fine.
                eprintln!("note: discarding unusable image ({e}); starting fresh");
                std::fs::remove_file(&path)?;
                return open_db();
            }
        };
        let store = ObjectStore::attach(&region)?;
        if store.recovered() {
            eprintln!("note: recovered from an interrupted transaction");
        }
        let map = PMap::attach(NodeArena::transactional(store.clone()), "kv-index")?;
        (region, store, map)
    } else {
        let region = Region::create_file(&path, 8 << 20)?;
        let store = ObjectStore::format(&region)?;
        let map = PMap::create_rooted(NodeArena::transactional(store.clone()), "kv-index")?;
        (region, store, map)
    };
    Ok((region, store, map))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (region, store, mut map) = open_db()?;
    println!(
        "db mapped at {:#x} (region {})",
        region.base(),
        region.rid()
    );

    match args
        .iter()
        .map(|s| s.as_str())
        .collect::<Vec<_>>()
        .as_slice()
    {
        ["set", key, value] => {
            if value.len() > MAX_VALUE {
                return Err(format!("value too long (max {MAX_VALUE} bytes)").into());
            }
            // Allocate + fill the value transactionally, then point the
            // index at it. A crash anywhere leaves the old state intact.
            let payload = {
                let mut tx = store.begin();
                let p = tx.alloc(VALUE_TYPE, 1 + value.len())?;
                unsafe {
                    tx.add_range(p.as_ptr() as usize, 1 + value.len())?;
                    write_value(p.as_ptr(), value);
                }
                tx.commit();
                p
            };
            let riv = Riv::p2x(payload.as_ptr() as usize);
            let old = map.insert(key_hash(key), riv.raw())?;
            if let Some(old_raw) = old {
                // Free the replaced value object.
                let old_ptr = riv_from_raw(old_raw).x2p() as *mut u8;
                unsafe { store.free(std::ptr::NonNull::new(old_ptr).unwrap())? };
                println!("updated {key}");
            } else {
                println!("inserted {key}");
            }
            region.sync()?;
        }
        ["get", key] => match map.get(key_hash(key)) {
            Some(raw) => {
                let v = unsafe { read_value(riv_from_raw(raw).x2p() as *const u8) };
                println!("{v}");
            }
            None => println!("(not found)"),
        },
        ["del", key] => match map.remove(key_hash(key)) {
            Some(raw) => {
                let p = riv_from_raw(raw).x2p() as *mut u8;
                unsafe { store.free(std::ptr::NonNull::new(p).unwrap())? };
                region.sync()?;
                println!("deleted {key}");
            }
            None => println!("(not found)"),
        },
        ["list"] => {
            let entries = map.entries();
            println!(
                "{} values, {} store objects:",
                entries.len(),
                store.object_count()
            );
            for (hash, raw) in entries {
                let v = unsafe { read_value(riv_from_raw(raw).x2p() as *const u8) };
                println!("  {hash:#018x} = {v:?}");
            }
        }
        ["reset"] => {
            drop(map);
            drop(store);
            region.close()?;
            std::fs::remove_file(db_path())?;
            println!("database removed");
            return Ok(());
        }
        _ => {
            eprintln!("usage: kvstore set <key> <value> | get <key> | del <key> | list | reset");
            std::process::exit(2);
        }
    }

    region.close()?;
    Ok(())
}

fn riv_from_raw(raw: u64) -> Riv {
    // SAFETY: Riv is repr(transparent) over u64; the raw bits came from
    // Riv::raw() stored in the index.
    unsafe { std::mem::transmute::<u64, Riv>(raw) }
}
