//! Quickstart: build a persistent data structure, close it, reopen it at a
//! different virtual address, and keep using it.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use nvm_pi::{NodeArena, NvSpace, PList, Region, Riv};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join(format!("nvm-pi-quickstart-{}", std::process::id()));
    std::fs::create_dir_all(&dir)?;
    let path = dir.join("quickstart.nvr");

    // --- First "run": create a durable region and build a list in it. ---
    let first_base;
    {
        let region = Region::create_file(&path, 4 << 20)?;
        first_base = region.base();
        println!("created region {} at {:#x}", region.rid(), first_base);

        let mut list: PList<Riv, 32> =
            PList::create_rooted(NodeArena::raw(region.clone()), "numbers")?;
        list.extend((0..1000).map(|i| i * i))?;
        println!(
            "stored {} square numbers, checksum {:#x}",
            list.len(),
            list.traverse()
        );

        region.close()?; // clean close flushes the image
    }

    // --- Second "run": reopen. A random free segment is chosen, so the
    // region almost surely lands at a different base address — exactly the
    // situation that breaks absolute pointers (paper, Figure 1). ---
    let region = Region::open_file(&path)?;
    println!(
        "reopened at {:#x} ({})",
        region.base(),
        if region.base() == first_base {
            "same address, rare!"
        } else {
            "different address"
        }
    );

    let list: PList<Riv, 32> = PList::attach(NodeArena::raw(region.clone()), "numbers")?;
    assert_eq!(list.len(), 1000);
    assert!(list.contains(999 * 999));
    assert!(list.verify_payloads());
    println!(
        "list intact: {} nodes, checksum {:#x}",
        list.len(),
        list.traverse()
    );

    // The RIV conversion functions are ordinary library calls:
    let space = NvSpace::global();
    let head = region.root("numbers").unwrap();
    println!(
        "Addr2ID({head:#x}) = {}, ID2Addr({}) = {:#x}",
        space.rid_of_addr(head),
        region.rid(),
        space.base_of_rid(region.rid()),
    );

    region.close()?;
    std::fs::remove_dir_all(&dir).ok();
    println!("done");
    Ok(())
}
