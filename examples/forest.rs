//! The paper's Section 4.4 forest scenario: "Consider a forest consisting
//! of some trees. Each tree could be put into a region. Cross-region
//! pointers are needed only for the few connections between trees. ...
//! If a tree grows too large to fit into a basic NVRegion, it could be
//! migrated to a higher-level larger NVRegion."
//!
//! This example builds a forest with one tree per region, intra-region
//! `persistentI` child links, a cross-region RIV "connection" list between
//! tree roots — then **migrates** a tree that outgrew its region into a
//! bigger one, after which only the single cross-region pointer to that
//! tree needed updating; the tree's internal off-holder links moved
//! untouched, byte for byte.
//!
//! ```text
//! cargo run --example forest
//! ```

use nvm_pi::{NodeArena, OffHolder, PBst, Region, Riv};

/// A forest directory entry: a RIV pointer to a tree's header in its own
/// region. (RIV, because every tree lives in a different region.)
#[repr(C)]
struct ForestEntry {
    tree: Riv,
}

fn tree_checksum(t: &PBst<OffHolder, 32>) -> u64 {
    t.traverse()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The forest directory lives in its own small region.
    let directory_region = Region::create(1 << 20)?;
    let dir = directory_region
        .alloc(std::mem::size_of::<ForestEntry>() * 8, 8)?
        .as_ptr() as *mut ForestEntry;

    // Three trees, each in its own (small) region.
    let mut tree_regions = Vec::new();
    let mut trees = Vec::new();
    for i in 0..3u64 {
        let region = Region::create(1 << 20)?; // deliberately small
        let mut tree: PBst<OffHolder, 32> =
            PBst::create_rooted(NodeArena::raw(region.clone()), "tree")?;
        tree.extend((0..500).map(|k| k * 3 + i))?;
        // Cross-region connection: directory entry -> tree header.
        unsafe {
            (*dir.add(i as usize)).tree = Riv::p2x(tree.header_addr());
        }
        println!(
            "tree {i}: region {} @ {:#x}, 500 keys, checksum {:#x}",
            region.rid(),
            region.base(),
            tree_checksum(&tree)
        );
        tree_regions.push(region);
        trees.push(tree);
    }

    // Tree 1 "grows too large": its 1 MiB region cannot take much more.
    // Migrate it to a larger region, as the paper prescribes: copy the
    // subtree into the new region and update the one cross-region pointer.
    let old_region = tree_regions[1].clone();
    let before = tree_checksum(&trees[1]);
    println!(
        "migrating tree 1 out of region {} ({} of {} bytes used)...",
        old_region.rid(),
        old_region.stats().bump,
        old_region.size(),
    );

    let big_region = Region::create(8 << 20)?;
    let mut migrated: PBst<OffHolder, 32> =
        PBst::create_rooted(NodeArena::raw(big_region.clone()), "tree")?;
    // Rebuild balanced in the new region (the keys come out of the old
    // tree's iterator; its off-holder links are still fully valid).
    let keys = trees[1].keys_in_order();
    migrated.build_balanced(&keys)?;
    // Keep growing — this is why we migrated.
    migrated.extend((0..2000).map(|k| 100_000 + k))?;

    // One pointer update in the directory; nothing else changes anywhere.
    unsafe {
        (*dir.add(1)).tree = Riv::p2x(migrated.header_addr());
    }
    trees[1] = migrated;
    old_region.close()?;

    println!(
        "tree 1 now in region {} @ {:#x}: {} keys, height {}",
        big_region.rid(),
        big_region.base(),
        trees[1].len(),
        trees[1].height()
    );
    assert!(trees[1].verify());
    assert_eq!(
        {
            let t = &trees[1];
            let mut sum = 0u64;
            for k in keys.iter() {
                sum += u64::from(t.contains(*k));
            }
            sum
        },
        500,
        "every pre-migration key survived"
    );
    let _ = before;

    // The forest is still fully navigable through the directory.
    for i in 0..3usize {
        let riv = unsafe { (*dir.add(i)).tree };
        let header = riv.x2p();
        assert_ne!(header, 0);
        println!(
            "directory[{i}] -> region {} (RIV {:#018x})",
            nvm_pi::NvSpace::global().rid_of_addr(header),
            riv.raw()
        );
    }

    for r in tree_regions.into_iter().skip(2) {
        r.close()?;
    }
    tree_regions_cleanup(big_region, directory_region, trees)?;
    println!("forest intact after migration");
    Ok(())
}

fn tree_regions_cleanup(
    big: Region,
    dir: Region,
    trees: Vec<PBst<OffHolder, 32>>,
) -> Result<(), Box<dyn std::error::Error>> {
    drop(trees);
    big.close()?;
    dir.close()?;
    Ok(())
}
